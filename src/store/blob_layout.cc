#include "store/blob_layout.h"

#include <cstring>
#include <limits>

#include "common/crc32.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "store/varint.h"

namespace rfidclean::store {

namespace {

Status BlobError(const char* what, const std::string& detail) {
  return InvalidArgumentError(StrFormat("ct-graph blob: %s: %s", what,
                                        detail.c_str()));
}

Status CrcError(const char* region, std::uint32_t stored,
                std::uint32_t computed) {
  RFID_STATS(obs::Add(obs::Counter::kStoreCrcFailures));
  return InvalidArgumentError(
      StrFormat("ct-graph blob: %s checksum mismatch (stored %08x, computed "
                "%08x)",
                region, stored, computed));
}

const char* SectionName(SectionId id) {
  switch (id) {
    case SectionId::kLayers: return "LAYERS";
    case SectionId::kKeys: return "KEYS";
    case SectionId::kSourceProb: return "SRCPROB";
    case SectionId::kEdgeRows: return "EDGEROWS";
    case SectionId::kEdgeTargets: return "EDGETGT";
    case SectionId::kEdgeProb: return "EDGEPROB";
  }
  return "?";
}

/// Decodes the KEYS section: per node, in id order,
///   zigzag(location - prev_location)   (prev_location persists, init 0)
///   zigzag(delta)
///   varint(|TL|)
///   per TL entry: zigzag(time), zigzag(location - prev_tl_location)
///                 (prev_tl_location resets to 0 per node)
Status DecodeKeys(const ParsedBlob& blob, BlobContents* contents) {
  const unsigned char* cursor = blob.SectionData(SectionId::kKeys);
  const unsigned char* end = cursor + blob.SectionSize(SectionId::kKeys);
  const std::uint64_t num_nodes = blob.header.num_nodes;

  // Every TL entry costs at least two bytes, so this bounds the total
  // departure count below 2^32 and keeps the tl_begin offsets in u32.
  if (blob.SectionSize(SectionId::kKeys) / 2 >
      std::numeric_limits<std::uint32_t>::max() - 1) {
    return BlobError("KEYS section", "section too large");
  }
  contents->locations.reserve(static_cast<std::size_t>(num_nodes));
  contents->deltas.reserve(static_cast<std::size_t>(num_nodes));
  contents->tl_begin.reserve(static_cast<std::size_t>(num_nodes) + 1);
  contents->tl_begin.push_back(0);
  std::int64_t prev_location = 0;
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    auto key_error = [&](const std::string& detail) {
      return BlobError("KEYS section",
                       StrFormat("node %llu: %s",
                                 static_cast<unsigned long long>(i),
                                 detail.c_str()));
    };
    std::int64_t location_delta = 0;
    std::int64_t delta = 0;
    std::uint64_t tl_count = 0;
    if (!GetZigzag(&cursor, end, &location_delta) ||
        !GetZigzag(&cursor, end, &delta) ||
        !GetVarint(&cursor, end, &tl_count)) {
      return key_error("truncated or malformed varint");
    }
    const std::int64_t location = prev_location + location_delta;
    if (location < 0 || location > std::numeric_limits<std::int32_t>::max()) {
      return key_error(StrFormat("location %lld out of range",
                                 static_cast<long long>(location)));
    }
    prev_location = location;
    if (delta < kDeltaBottom ||
        delta > std::numeric_limits<std::int32_t>::max()) {
      return key_error(StrFormat("delta %lld out of range",
                                 static_cast<long long>(delta)));
    }
    // Every TL entry costs at least two bytes; a count the remaining bytes
    // cannot hold is corruption, caught before sizing any container.
    if (tl_count > static_cast<std::uint64_t>(end - cursor) / 2 + 1) {
      return key_error(StrFormat("TL count %llu exceeds section capacity",
                                 static_cast<unsigned long long>(tl_count)));
    }
    contents->locations.push_back(static_cast<LocationId>(location));
    contents->deltas.push_back(static_cast<Timestamp>(delta));
    std::int64_t prev_tl_location = 0;
    for (std::uint64_t d = 0; d < tl_count; ++d) {
      std::int64_t time = 0;
      std::int64_t tl_location_delta = 0;
      if (!GetZigzag(&cursor, end, &time) ||
          !GetZigzag(&cursor, end, &tl_location_delta)) {
        return key_error("truncated TL entry");
      }
      if (time < 0 || time > std::numeric_limits<std::int32_t>::max()) {
        return key_error(StrFormat("TL time %lld out of range",
                                   static_cast<long long>(time)));
      }
      const std::int64_t tl_location = prev_tl_location + tl_location_delta;
      // TL lists are sorted by location with no duplicates (location_node.h
      // invariant), so each decoded location must strictly exceed the last;
      // the first must simply be a valid id.
      const std::int64_t floor = d == 0 ? 0 : prev_tl_location + 1;
      if (tl_location < floor ||
          tl_location > std::numeric_limits<std::int32_t>::max()) {
        return key_error(StrFormat("TL location %lld breaks sorted order",
                                   static_cast<long long>(tl_location)));
      }
      prev_tl_location = tl_location;
      contents->departures.push_back(
          Departure{static_cast<Timestamp>(time),
                    static_cast<LocationId>(tl_location)});
    }
    contents->tl_begin.push_back(
        static_cast<std::uint32_t>(contents->departures.size()));
  }
  if (cursor != end) {
    return BlobError("KEYS section",
                     StrFormat("%zu trailing bytes after the last key",
                               static_cast<std::size_t>(end - cursor)));
  }
  return Status::Ok();
}

/// Decodes the EDGETGT section: per edge in CSR order,
/// zigzag(to - prev_target) with one running prev_target across the whole
/// section (init 0). Each target must land in its source node's next
/// layer, which also proves it is a valid NodeId.
Result<std::vector<NodeId>> DecodeEdgeTargets(const BlobContents& contents) {
  const ParsedBlob& blob = contents.parsed;
  const unsigned char* cursor = blob.SectionData(SectionId::kEdgeTargets);
  const unsigned char* end =
      cursor + blob.SectionSize(SectionId::kEdgeTargets);
  const std::int32_t length = blob.header.length;

  std::vector<NodeId> targets;
  targets.reserve(static_cast<std::size_t>(blob.header.num_edges));
  std::int64_t prev_target = 0;
  for (std::int32_t t = 0; t < length; ++t) {
    const std::uint64_t layer_lo = contents.LayerBegin(t);
    const std::uint64_t layer_hi = contents.LayerBegin(t + 1);
    const std::uint64_t next_lo = t + 1 < length ? layer_hi : 0;
    const std::uint64_t next_hi =
        t + 1 < length ? contents.LayerBegin(t + 2) : 0;
    for (std::uint64_t node = layer_lo; node < layer_hi; ++node) {
      const std::uint64_t row_begin = contents.EdgeRow(node);
      const std::uint64_t row_end = contents.EdgeRow(node + 1);
      if (t == length - 1) {
        if (row_end != row_begin) {
          return BlobError("EDGEROWS section",
                           StrFormat("target node %llu has %llu edges",
                                     static_cast<unsigned long long>(node),
                                     static_cast<unsigned long long>(
                                         row_end - row_begin)));
        }
        continue;
      }
      if (row_end == row_begin) {
        return BlobError(
            "EDGEROWS section",
            StrFormat("non-target node %llu has no outgoing edge",
                      static_cast<unsigned long long>(node)));
      }
      for (std::uint64_t e = row_begin; e < row_end; ++e) {
        std::int64_t delta = 0;
        if (!GetZigzag(&cursor, end, &delta)) {
          return BlobError("EDGETGT section",
                           "truncated or malformed varint");
        }
        const std::int64_t to = prev_target + delta;
        if (to < static_cast<std::int64_t>(next_lo) ||
            to >= static_cast<std::int64_t>(next_hi)) {
          return BlobError(
              "EDGETGT section",
              StrFormat("edge %llu of node %llu targets %lld outside layer "
                        "%d",
                        static_cast<unsigned long long>(e - row_begin),
                        static_cast<unsigned long long>(node),
                        static_cast<long long>(to), t + 1));
        }
        prev_target = to;
        targets.push_back(static_cast<NodeId>(to));
      }
    }
  }
  if (cursor != end) {
    return BlobError("EDGETGT section",
                     StrFormat("%zu trailing bytes after the last edge",
                               static_cast<std::size_t>(end - cursor)));
  }
  return targets;
}

}  // namespace

Result<ParsedBlob> ParseAndVerifyBlob(const unsigned char* data,
                                      std::size_t size,
                                      SectionChecks checks) {
  if (size < kBlobPreludeBytes) {
    return BlobError("truncated",
                     StrFormat("%zu bytes, need at least %u for the header "
                               "and section table",
                               size, kBlobPreludeBytes));
  }
  if (std::memcmp(data, kBlobMagic, sizeof(kBlobMagic)) != 0) {
    return BlobError("bad magic", "not a ct-graph blob");
  }

  ParsedBlob blob;
  blob.base = data;
  blob.size = size;
  BlobHeader& header = blob.header;
  header.version = LoadU32(data + 8);
  if (header.version != kFormatVersion) {
    return BlobError("unsupported format version",
                     StrFormat("%u (this build reads version %u)",
                               header.version, kFormatVersion));
  }

  // The header checksum covers bytes [0, 92) plus the whole section table
  // [96, 288) — everything that describes geometry — so any flipped bit in
  // either is caught before a single derived offset is trusted.
  const std::uint32_t stored_header_crc = LoadU32(data + kBlobHeaderBytes - 4);
  const std::uint32_t computed_header_crc =
      Crc32(data + kBlobHeaderBytes, kBlobTableBytes,
            Crc32(data, kBlobHeaderBytes - 4));
  if (stored_header_crc != computed_header_crc) {
    return CrcError("header", stored_header_crc, computed_header_crc);
  }

  header.flags = LoadU32(data + 12);
  header.tag = LoadI64(data + 16);
  header.length = LoadI32(data + 24);
  header.num_nodes = LoadU64(data + 32);
  header.num_edges = LoadU64(data + 40);
  header.input_digest = LoadU64(data + 48);
  header.constraint_digest = LoadU64(data + 56);
  header.graph_digest = LoadU64(data + 64);

  if (header.flags != 0) {
    return BlobError("unsupported flags",
                     StrFormat("%08x (v1 defines none)", header.flags));
  }
  if (header.length < 1 || header.length > kMaxBlobLength) {
    return BlobError("length out of range",
                     StrFormat("%d", header.length));
  }
  if (header.num_nodes < 1 || header.num_nodes > kMaxBlobNodes) {
    return BlobError("node count out of range",
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           header.num_nodes)));
  }
  if (header.num_edges > kMaxBlobEdges) {
    return BlobError("edge count out of range",
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           header.num_edges)));
  }

  // Section table: six known ids in order, payloads packed back-to-back on
  // 8-byte boundaries, the last one ending flush with the blob. Pinning the
  // geometry this tightly makes the writer's output the *only* accepted
  // encoding of a given graph (golden-fixture byte identity) and leaves no
  // slack bytes for a parser differential to hide in.
  std::uint64_t expected_offset = kBlobPreludeBytes;
  for (std::uint32_t i = 0; i < kNumSections; ++i) {
    const unsigned char* entry =
        data + kBlobHeaderBytes + std::size_t{i} * kSectionEntryBytes;
    SectionEntry& section = blob.sections[i];
    section.id = LoadU32(entry);
    section.crc = LoadU32(entry + 4);
    section.offset = LoadU64(entry + 8);
    section.size = LoadU64(entry + 16);
    const std::uint64_t reserved = LoadU64(entry + 24);
    const char* name = SectionName(static_cast<SectionId>(i + 1));
    if (section.id != i + 1) {
      return BlobError("section table",
                       StrFormat("entry %u has id %u, expected %u (%s)", i,
                                 section.id, i + 1, name));
    }
    if (reserved != 0) {
      return BlobError("section table",
                       StrFormat("%s entry has nonzero reserved field",
                                 name));
    }
    if (section.offset != expected_offset) {
      return BlobError(
          "section table",
          StrFormat("%s payload at offset %llu, expected %llu", name,
                    static_cast<unsigned long long>(section.offset),
                    static_cast<unsigned long long>(expected_offset)));
    }
    if (section.size > size - section.offset) {
      // section.offset <= size holds: expected_offset only grows past size
      // when a previous size already failed this check.
      return BlobError(
          "section table",
          StrFormat("%s payload (%llu bytes at %llu) overruns the %zu-byte "
                    "blob",
                    name, static_cast<unsigned long long>(section.size),
                    static_cast<unsigned long long>(section.offset), size));
    }
    expected_offset = AlignUp(section.offset + section.size);
  }
  if (expected_offset != size) {
    return BlobError("trailing bytes",
                     StrFormat("blob is %zu bytes but sections end at %llu",
                               size,
                               static_cast<unsigned long long>(
                                   expected_offset)));
  }

  // Fixed-width sections have header-determined sizes. length and
  // num_nodes are already range-capped, so these products cannot overflow.
  const auto expect_size = [&](SectionId id,
                               std::uint64_t want) -> Status {
    const std::uint64_t got = blob.SectionSize(id);
    if (got != want) {
      return BlobError(
          "section table",
          StrFormat("%s payload is %llu bytes, expected %llu",
                    SectionName(id), static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(want)));
    }
    return Status::Ok();
  };
  RFID_RETURN_IF_ERROR(expect_size(
      SectionId::kLayers,
      (static_cast<std::uint64_t>(header.length) + 1) * 4));
  RFID_RETURN_IF_ERROR(
      expect_size(SectionId::kEdgeRows, (header.num_nodes + 1) * 4));
  RFID_RETURN_IF_ERROR(
      expect_size(SectionId::kEdgeProb, header.num_edges * 8));
  if (blob.SectionSize(SectionId::kSourceProb) % 8 != 0) {
    return BlobError("section table",
                     "SRCPROB payload is not a whole number of doubles");
  }

  for (std::uint32_t i = 0; i < kNumSections; ++i) {
    const SectionId id = static_cast<SectionId>(i + 1);
    if (checks == SectionChecks::kGeometry &&
        (id == SectionId::kSourceProb || id == SectionId::kEdgeProb)) {
      continue;
    }
    const SectionEntry& section = blob.sections[i];
    const std::uint32_t computed =
        Crc32(data + section.offset, static_cast<std::size_t>(section.size));
    if (computed != section.crc) {
      return CrcError(StrFormat("%s section", SectionName(id)).c_str(),
                      section.crc, computed);
    }
  }
  return blob;
}

Result<BlobContents> ParseBlobContents(const unsigned char* data,
                                       std::size_t size,
                                       SectionChecks checks) {
  RFID_STATS(obs::PhaseTimer timer(obs::Phase::kStoreDecode));
  BlobContents contents;
  RFID_ASSIGN_OR_RETURN(contents.parsed,
                        ParseAndVerifyBlob(data, size, checks));
  const ParsedBlob& blob = contents.parsed;
  const BlobHeader& header = blob.header;

  contents.layer_begin = blob.SectionData(SectionId::kLayers);
  contents.edge_rows = blob.SectionData(SectionId::kEdgeRows);
  contents.source_prob = blob.SectionData(SectionId::kSourceProb);
  contents.edge_prob = blob.SectionData(SectionId::kEdgeProb);

  // Layer offsets: start at 0, strictly increase (a valid ct-graph has no
  // empty layer), end at num_nodes.
  if (contents.LayerBegin(0) != 0) {
    return BlobError("LAYERS section", "first offset is not 0");
  }
  for (std::int32_t t = 0; t < header.length; ++t) {
    if (contents.LayerBegin(t + 1) <= contents.LayerBegin(t)) {
      return BlobError("LAYERS section",
                       StrFormat("layer %d is empty or offsets decrease",
                                 t));
    }
  }
  if (contents.LayerBegin(header.length) != header.num_nodes) {
    return BlobError(
        "LAYERS section",
        StrFormat("offsets end at %u but the header claims %llu nodes",
                  contents.LayerBegin(header.length),
                  static_cast<unsigned long long>(header.num_nodes)));
  }
  const std::uint64_t layer0 = contents.LayerBegin(1);
  if (blob.SectionSize(SectionId::kSourceProb) != layer0 * 8) {
    return BlobError(
        "SRCPROB section",
        StrFormat("%llu bytes for %llu source nodes",
                  static_cast<unsigned long long>(
                      blob.SectionSize(SectionId::kSourceProb)),
                  static_cast<unsigned long long>(layer0)));
  }

  // CSR edge rows: start at 0, monotone, end at num_edges.
  if (contents.EdgeRow(0) != 0) {
    return BlobError("EDGEROWS section", "first row offset is not 0");
  }
  for (std::uint64_t i = 0; i < header.num_nodes; ++i) {
    if (contents.EdgeRow(i + 1) < contents.EdgeRow(i)) {
      return BlobError("EDGEROWS section",
                       StrFormat("row offsets decrease at node %llu",
                                 static_cast<unsigned long long>(i)));
    }
  }
  if (contents.EdgeRow(header.num_nodes) != header.num_edges) {
    return BlobError(
        "EDGEROWS section",
        StrFormat("rows end at %u but the header claims %llu edges",
                  contents.EdgeRow(header.num_nodes),
                  static_cast<unsigned long long>(header.num_edges)));
  }

  RFID_RETURN_IF_ERROR(DecodeKeys(blob, &contents));
  RFID_ASSIGN_OR_RETURN(contents.edge_targets, DecodeEdgeTargets(contents));

  RFID_STATS(obs::Add(obs::Counter::kStoreBlobsDecoded));
  RFID_STATS(obs::Add(obs::Counter::kStoreBytesDecoded, size));
  return contents;
}

}  // namespace rfidclean::store
