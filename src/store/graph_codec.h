#ifndef RFIDCLEAN_STORE_GRAPH_CODEC_H_
#define RFIDCLEAN_STORE_GRAPH_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/ct_graph.h"
#include "store/format.h"

/// \file
/// Materializing codec between CtGraph and the version-1 binary blob
/// (docs/FORMATS.md). Encoding is canonical: a given graph has exactly one
/// valid byte encoding, so equal graphs produce byte-identical blobs and
/// golden fixtures can assert byte-for-byte equality. Decoding re-validates
/// every invariant (CtGraph::Assemble + the stored graph digest + the
/// installed self-audit hook), so a blob that decodes is as trustworthy as
/// a graph the builder just produced.

namespace rfidclean::store {

/// Provenance carried alongside a serialized graph: the FNV digests of the
/// tag's input readings and of the integrity-constraint set that cleaned
/// it (matching obs::TagProvenance). Zero when unknown.
struct GraphProvenance {
  std::uint64_t input_digest = 0;
  std::uint64_t constraint_digest = 0;
};

/// Serializes `graph` into a self-contained blob. Nodes are stored in
/// layer order; graphs whose ids are already layer-ordered (everything the
/// builder and the decoders produce) round-trip with a bit-identical
/// CtGraph::Digest(), otherwise ids are canonically renumbered (stable
/// within each layer) and the stored digest is the renumbered graph's.
std::string EncodeCtGraphBlob(const CtGraph& graph, std::int64_t tag,
                              const GraphProvenance& provenance = {});

/// Decodes a blob into an owning CtGraph. Verifies checksums, structure,
/// CtGraph invariants, the stored graph digest, and runs the registered
/// self-audit hook on the result.
Result<CtGraph> DecodeCtGraphBlob(const unsigned char* data,
                                  std::size_t size);
inline Result<CtGraph> DecodeCtGraphBlob(const std::string& bytes) {
  return DecodeCtGraphBlob(
      reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size());
}

/// Header fields plus measured size of a blob, for listings and `store
/// ls`. Verifies the header checksum and geometry but skips section
/// payload decoding.
struct BlobInfo {
  BlobHeader header;
  std::size_t blob_bytes = 0;
};
Result<BlobInfo> InspectCtGraphBlob(const unsigned char* data,
                                    std::size_t size);

}  // namespace rfidclean::store

#endif  // RFIDCLEAN_STORE_GRAPH_CODEC_H_
