#ifndef RFIDCLEAN_STORE_CTGRAPH_VIEW_H_
#define RFIDCLEAN_STORE_CTGRAPH_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/ct_graph.h"
#include "core/location_node.h"
#include "store/blob_layout.h"
#include "store/mmap_file.h"

/// \file
/// Immutable zero-copy view over a binary ct-graph blob. The fixed-width
/// sections — layer offsets, CSR edge rows, source and edge probability
/// doubles — are read in place from the mapped bytes (never copied); only
/// the varint-compressed sections (node keys, edge targets) are decoded
/// into owned arrays at Map time. The view satisfies the same structural
/// graph concept as CtGraph (length / NodesAt / OutEdges / LocationOf /
/// SourceProbability), so the templated query algorithms in src/query run
/// on either representation and produce bit-identical results; invariants
/// of the aliasing are specified in docs/ALGORITHM.md §12.
///
/// Lifetime: a view never owns the blob bytes unless constructed through
/// an overload taking a keepalive. Map(data, size) requires the caller to
/// keep [data, data + size) alive and unchanged for the view's lifetime.

namespace rfidclean::store {

/// One out-edge as surfaced by CtGraphView: value type, field-compatible
/// with CtGraph::Edge.
struct EdgeRef {
  NodeId to = kInvalidNode;
  double probability = 0.0;
};

/// Contiguous span over one node's TL departure list.
struct DepartureSpan {
  const Departure* first = nullptr;
  const Departure* last = nullptr;
  const Departure* begin() const { return first; }
  const Departure* end() const { return last; }
  std::size_t size() const {
    return static_cast<std::size_t>(last - first);
  }
  bool empty() const { return first == last; }
};

/// Random-access range over one node's out-edges, materializing EdgeRef
/// values from the split target/probability arrays.
class EdgeRange {
 public:
  class Iterator {
   public:
    Iterator(const NodeId* targets, const unsigned char* prob,
             std::size_t index)
        : targets_(targets), prob_(prob), index_(index) {}
    EdgeRef operator*() const {
      return EdgeRef{targets_[index_],
                     LoadDouble(prob_ + std::size_t{8} * index_)};
    }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.index_ == b.index_;
    }

   private:
    const NodeId* targets_;
    const unsigned char* prob_;
    std::size_t index_;
  };

  EdgeRange(const NodeId* targets, const unsigned char* prob,
            std::size_t count)
      : targets_(targets), prob_(prob), count_(count) {}

  Iterator begin() const { return Iterator(targets_, prob_, 0); }
  Iterator end() const { return Iterator(targets_, prob_, count_); }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  EdgeRef operator[](std::size_t i) const {
    return EdgeRef{targets_[i], LoadDouble(prob_ + std::size_t{8} * i)};
  }

 private:
  const NodeId* targets_;
  const unsigned char* prob_;
  std::size_t count_;
};

/// Contiguous node-id range [first, last): blob node ids are dense in
/// layer order, so a layer *is* an id interval.
class IdRange {
 public:
  class Iterator {
   public:
    explicit Iterator(NodeId id) : id_(id) {}
    NodeId operator*() const { return id_; }
    Iterator& operator++() {
      ++id_;
      return *this;
    }
    friend bool operator==(const Iterator&, const Iterator&) = default;

   private:
    NodeId id_;
  };

  IdRange(NodeId first, NodeId last) : first_(first), last_(last) {}
  Iterator begin() const { return Iterator(first_); }
  Iterator end() const { return Iterator(last_); }
  std::size_t size() const { return static_cast<std::size_t>(last_ - first_); }
  bool empty() const { return first_ == last_; }
  NodeId operator[](std::size_t i) const {
    return first_ + static_cast<NodeId>(i);
  }
  NodeId front() const { return first_; }

 private:
  NodeId first_;
  NodeId last_;
};

/// How much re-verification Map performs beyond the always-on structural
/// parse (magic, geometry, per-section CRCs, varint decoding, index-range
/// validation — everything memory safety depends on).
///
/// kStructural is the load fast path: it checksums the geometry-bearing
/// sections (layers, keys, edge rows, edge targets — everything indexing
/// arithmetic derives from) and skips the two probability payloads, which
/// are only ever read as opaque doubles and cannot affect memory safety.
/// kFull additionally checksums those payloads, recomputes the FNV graph
/// digest against the stored header digest and re-runs the semantic
/// consistency checks (source mass, per-node outgoing mass, reachability)
/// — the mode for `store verify`, audits and differential tests, where
/// catching corruption or encoder/decoder drift matters more than load
/// latency.
enum class MapVerify {
  kStructural,
  kFull,
};

class CtGraphView {
 public:
  /// An unmapped view; usable only as an assignment target.
  CtGraphView() = default;

  /// Maps a blob from caller-owned bytes. Always runs the full structural
  /// parse (checksums, geometry, section decoding); see MapVerify for what
  /// kFull adds.
  static Result<CtGraphView> Map(const unsigned char* data, std::size_t size,
                                 MapVerify verify = MapVerify::kStructural);

  /// Convenience: memory-maps a standalone blob file and keeps the
  /// mapping alive inside the view.
  static Result<CtGraphView> MapFile(
      const std::string& path, MapVerify verify = MapVerify::kStructural);

  /// As Map, with a keepalive the view retains (e.g. the store reader's
  /// shared container mapping).
  static Result<CtGraphView> Map(const unsigned char* data, std::size_t size,
                                 std::shared_ptr<const MmapFile> keepalive,
                                 MapVerify verify = MapVerify::kStructural);

  // -- Graph concept (mirrors CtGraph) --
  Timestamp length() const { return contents_.parsed.header.length; }
  std::size_t NumNodes() const {
    return static_cast<std::size_t>(contents_.parsed.header.num_nodes);
  }
  std::size_t NumEdges() const {
    return static_cast<std::size_t>(contents_.parsed.header.num_edges);
  }
  IdRange NodesAt(Timestamp t) const {
    RFID_CHECK_GE(t, 0);
    RFID_CHECK_LT(t, length());
    return IdRange(static_cast<NodeId>(contents_.LayerBegin(t)),
                   static_cast<NodeId>(contents_.LayerBegin(t + 1)));
  }
  IdRange SourceNodes() const { return NodesAt(0); }
  IdRange TargetNodes() const { return NodesAt(length() - 1); }
  LocationId LocationOf(NodeId id) const {
    return contents_.locations[CheckedIndex(id)];
  }
  /// The node key's transit-literal delta (kDeltaBottom when absent).
  Timestamp DeltaOf(NodeId id) const {
    return contents_.deltas[CheckedIndex(id)];
  }
  /// The node key's TL departure list (sorted by location), as a
  /// contiguous span into the view's decoded arrays.
  DepartureSpan DeparturesOf(NodeId id) const {
    const std::size_t i = CheckedIndex(id);
    return DepartureSpan{
        contents_.departures.data() + contents_.tl_begin[i],
        contents_.departures.data() + contents_.tl_begin[i + 1]};
  }
  /// p_N of a source node; 0 for non-sources (mirrors the unused field of
  /// CtGraph::Node).
  double SourceProbability(NodeId id) const {
    const std::size_t i = CheckedIndex(id);
    if (i >= contents_.LayerBegin(1)) return 0.0;
    return LoadDouble(contents_.source_prob + std::size_t{8} * i);
  }
  EdgeRange OutEdges(NodeId id) const {
    const std::size_t i = CheckedIndex(id);
    const std::uint32_t begin = contents_.EdgeRow(i);
    const std::uint32_t end = contents_.EdgeRow(i + 1);
    return EdgeRange(contents_.edge_targets.data() + begin,
                     contents_.edge_prob + std::uint64_t{8} * begin,
                     end - begin);
  }
  /// Timestamp of `id`, recovered from the layer offsets (binary search).
  Timestamp TimeOf(NodeId id) const;

  // -- Provenance carried by the blob header --
  std::int64_t tag() const { return contents_.parsed.header.tag; }
  std::uint64_t input_digest() const {
    return contents_.parsed.header.input_digest;
  }
  std::uint64_t constraint_digest() const {
    return contents_.parsed.header.constraint_digest;
  }

  /// FNV digest of the viewed graph, bit-identical to what
  /// CtGraph::Digest() returns for the equivalent owning graph.
  std::uint64_t Digest() const;

  /// Re-verifies the CtGraph semantic invariants (source mass, per-node
  /// outgoing mass, reachability) against the mapped bytes. Run by
  /// Map(..., MapVerify::kFull); exposed for audits of long-lived
  /// mappings.
  Status CheckConsistency(double tolerance = 1e-9) const;

  /// Decodes the viewed bytes into an owning CtGraph (full re-validation).
  Result<CtGraph> Materialize() const;

 private:
  std::size_t CheckedIndex(NodeId id) const {
    RFID_CHECK_GE(id, 0);
    RFID_CHECK_LT(static_cast<std::size_t>(id), NumNodes());
    return static_cast<std::size_t>(id);
  }

  BlobContents contents_;
  std::shared_ptr<const MmapFile> keepalive_;
};

}  // namespace rfidclean::store

#endif  // RFIDCLEAN_STORE_CTGRAPH_VIEW_H_
