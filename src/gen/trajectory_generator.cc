#include "gen/trajectory_generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rfidclean {

namespace {

/// A straight-line leg (or a wait, when from == to) on one floor.
struct Segment {
  int floor = 0;
  Vec2 from;
  Vec2 to;
  double duration = 0.0;  // seconds
};

/// A point `inset` meters inside `footprint` from the door position,
/// toward the footprint center; keeps polylines out of walls.
Vec2 ApproachPoint(const Rect& footprint, Vec2 door_position, double inset) {
  Vec2 entry = footprint.ClosestPointTo(door_position);
  Vec2 toward = footprint.Center() - entry;
  double norm = toward.Norm();
  if (norm == 0.0) return entry;
  return entry + toward * std::min(1.0, inset / norm);
}

Vec2 RandomPointInside(const Rect& footprint, double inset, Rng& rng) {
  double usable = std::min({inset, footprint.Width() / 2 - 0.05,
                            footprint.Height() / 2 - 0.05});
  if (usable <= 0.0) return footprint.Center();
  return {rng.UniformDouble(footprint.min.x + usable,
                            footprint.max.x - usable),
          rng.UniformDouble(footprint.min.y + usable,
                            footprint.max.y - usable)};
}

}  // namespace

Trajectory ContinuousTrajectory::ToDiscrete(const Building& building) const {
  Trajectory trajectory;
  for (const PositionSample& sample : samples) {
    LocationId location =
        building.LocationNear(sample.floor, sample.position);
    RFID_CHECK_NE(location, kInvalidLocation);
    trajectory.Append(location);
  }
  return trajectory;
}

TrajectoryGenerator::TrajectoryGenerator(const Building& building)
    : building_(&building) {}

ContinuousTrajectory TrajectoryGenerator::Generate(
    const TrajectoryGenOptions& options, Rng& rng) const {
  RFID_CHECK_GT(options.duration_ticks, 0);
  RFID_CHECK_GT(options.min_speed, 0.0);
  RFID_CHECK_LE(options.min_speed, options.max_speed);
  RFID_CHECK_GE(options.min_stay, 1);
  RFID_CHECK_LE(options.min_stay, options.max_stay);

  const Building& building = *building_;
  std::vector<Segment> segments;
  double total = 0.0;
  auto add = [&](int floor, Vec2 from, Vec2 to, double duration) {
    if (duration <= 0.0) return;
    segments.push_back(Segment{floor, from, to, duration});
    total += duration;
  };
  auto add_move = [&](int floor, Vec2 from, Vec2 to, double speed) {
    add(floor, from, to, Distance(from, to) / speed);
  };

  // First room and entrance point are random (§6.4).
  LocationId current = static_cast<LocationId>(
      rng.UniformIndex(building.NumLocations()));
  Vec2 position = RandomPointInside(building.location(current).footprint,
                                    options.rest_inset, rng);

  const double horizon = static_cast<double>(options.duration_ticks);
  while (total < horizon) {
    const Location& room = building.location(current);
    const double speed =
        rng.UniformDouble(options.min_speed, options.max_speed);
    // Entrance point -> rest point, then stay.
    Vec2 rest = RandomPointInside(room.footprint, options.rest_inset, rng);
    add_move(room.floor, position, rest, speed);
    Timestamp stay = static_cast<Timestamp>(
        rng.UniformInt(options.min_stay, options.max_stay));
    add(room.floor, rest, rest, static_cast<double>(stay));
    position = rest;

    // Uniformly pick an exit: a door or a staircase of the current room.
    const std::vector<int>& doors = building.DoorsOf(current);
    const std::vector<int>& stairs = building.StairsOf(current);
    const std::size_t num_exits = doors.size() + stairs.size();
    RFID_CHECK_GT(num_exits, 0u);
    std::size_t exit = rng.UniformIndex(num_exits);
    if (exit < doors.size()) {
      const Door& door =
          building.doors()[static_cast<std::size_t>(doors[exit])];
      LocationId next = door.a == current ? door.b : door.a;
      const Location& next_room = building.location(next);
      Vec2 out = ApproachPoint(room.footprint, door.position, 0.35);
      Vec2 in = ApproachPoint(next_room.footprint, door.position, 0.35);
      add_move(room.floor, position, out, speed);
      add_move(room.floor, out, door.position, speed);
      add_move(room.floor, door.position, in, speed);
      current = next;
      position = in;
    } else {
      const StairEdge& stair = building.stairs()[static_cast<std::size_t>(
          stairs[exit - doors.size()])];
      LocationId next = stair.lower == current ? stair.upper : stair.lower;
      const Location& next_room = building.location(next);
      Vec2 here = room.footprint.Center();
      Vec2 there = next_room.footprint.Center();
      double climb = stair.length / speed;
      add_move(room.floor, position, here, speed);
      add(room.floor, here, here, climb / 2);
      add(next_room.floor, there, there, climb / 2);
      current = next;
      position = there;
    }
  }

  // Sample the polyline at integer seconds.
  ContinuousTrajectory trajectory;
  trajectory.samples.reserve(
      static_cast<std::size_t>(options.duration_ticks));
  double segment_start = 0.0;
  std::size_t index = 0;
  for (Timestamp t = 0; t < options.duration_ticks; ++t) {
    double at = static_cast<double>(t);
    while (index < segments.size() &&
           at >= segment_start + segments[index].duration) {
      segment_start += segments[index].duration;
      ++index;
    }
    RFID_CHECK_LT(index, segments.size());
    const Segment& segment = segments[index];
    double fraction = (at - segment_start) / segment.duration;
    trajectory.samples.push_back(PositionSample{
        segment.floor, Lerp(segment.from, segment.to, fraction)});
  }
  return trajectory;
}

}  // namespace rfidclean
