#include "gen/reading_generator.h"

#include "common/check.h"

namespace rfidclean {

ReadingGenerator::ReadingGenerator(const BuildingGrid& grid,
                                   const CoverageMatrix& truth)
    : grid_(&grid), truth_(&truth) {
  RFID_CHECK_EQ(truth.num_cells(), grid.NumCells());
  candidates_.resize(static_cast<std::size_t>(grid.NumCells()));
  for (int c = 0; c < grid.NumCells(); ++c) {
    for (ReaderId r = 0; r < truth.num_readers(); ++r) {
      if (truth.Probability(r, c) > 0.0) {
        candidates_[static_cast<std::size_t>(c)].push_back(r);
      }
    }
  }
}

RSequence ReadingGenerator::Generate(const ContinuousTrajectory& trajectory,
                                     Rng& rng) const {
  RFID_CHECK_GT(trajectory.length(), 0);
  std::vector<Reading> readings;
  readings.reserve(static_cast<std::size_t>(trajectory.length()));
  for (Timestamp t = 0; t < trajectory.length(); ++t) {
    const PositionSample& sample =
        trajectory.samples[static_cast<std::size_t>(t)];
    int cell = grid_->GlobalCellAt(sample.floor, sample.position);
    RFID_CHECK_GE(cell, 0);
    Reading reading;
    reading.time = t;
    for (ReaderId r : candidates_[static_cast<std::size_t>(cell)]) {
      if (rng.Bernoulli(truth_->Probability(r, cell))) {
        reading.readers.push_back(r);
      }
    }
    readings.push_back(std::move(reading));
  }
  Result<RSequence> sequence = RSequence::Create(std::move(readings));
  RFID_CHECK(sequence.ok());
  return std::move(sequence).value();
}

}  // namespace rfidclean
