#ifndef RFIDCLEAN_GEN_TRAJECTORY_GENERATOR_H_
#define RFIDCLEAN_GEN_TRAJECTORY_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "geometry/vec2.h"
#include "map/building.h"
#include "model/reading.h"
#include "model/trajectory.h"

namespace rfidclean {

/// Position of the object at one integer time point.
struct PositionSample {
  int floor = 0;
  Vec2 position;
};

/// A continuous ground-truth trajectory: one (x, y, floor) triple per tick,
/// as produced by the paper's trajectory-generator module (§6.4).
struct ContinuousTrajectory {
  std::vector<PositionSample> samples;

  Timestamp length() const {
    return static_cast<Timestamp>(samples.size());
  }

  /// Ground-truth discrete trajectory: the location of each sample.
  /// Samples inside door gaps are assigned the nearest location.
  Trajectory ToDiscrete(const Building& building) const;
};

/// Knobs of the generator; defaults follow §6.4.
struct TrajectoryGenOptions {
  Timestamp duration_ticks = 600;  ///< Trajectory length (1 tick = 1 s).
  double min_speed = 1.0;          ///< m/s, lower bound of the per-leg speed.
  double max_speed = 2.0;          ///< m/s, upper bound.
  Timestamp min_stay = 30;         ///< Rest-point stay, lower bound (ticks).
  Timestamp max_stay = 60;         ///< Rest-point stay, upper bound (ticks).
  double rest_inset = 0.6;         ///< Rest points at least this far from walls.
};

/// The paper's synthetic trajectory generator (§6.4). Each iteration moves
/// the object from its current room's entrance point to a random rest point
/// inside the room (velocity uniform in [min_speed, max_speed]), lets it
/// stay for a random latency in [min_stay, max_stay], then walks it to a
/// uniformly chosen exit (door or staircase), which determines the next room
/// and entrance point. The first room and position are drawn uniformly.
///
/// Movement is routed through per-door approach points so the polyline never
/// crosses a wall outside a door gap; staircases take length/velocity
/// seconds, spent at the two stairwells' centers.
class TrajectoryGenerator {
 public:
  /// `building` must outlive the generator, have every location connected,
  /// and rooms large enough for the rest inset.
  explicit TrajectoryGenerator(const Building& building);

  ContinuousTrajectory Generate(const TrajectoryGenOptions& options,
                                Rng& rng) const;

 private:
  const Building* building_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_GEN_TRAJECTORY_GENERATOR_H_
