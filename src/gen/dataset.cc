#include "gen/dataset.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "gen/reading_generator.h"
#include "map/standard_buildings.h"
#include "rfid/calibration.h"
#include "rfid/reader_placement.h"

namespace rfidclean {

Dataset::Dataset(const DatasetOptions& options, Building building)
    : options_(options),
      building_(std::move(building)),
      grid_(BuildingGrid::Build(building_, options.cell_size)),
      walking_(WalkingDistances::Compute(building_, grid_)) {}

std::unique_ptr<Dataset> Dataset::Build(const DatasetOptions& options) {
  RFID_CHECK_GE(options.num_floors, 1);
  RFID_CHECK(!options.durations_ticks.empty());
  RFID_CHECK_GE(options.trajectories_per_duration, 1);

  // unique_ptr with explicit new: the constructor is private.
  std::unique_ptr<Dataset> dataset(
      new Dataset(options, MakeOfficeBuilding(options.num_floors)));

  dataset->readers_ = PlaceStandardReaders(dataset->building_);
  DetectionModel model(options.detection);
  dataset->truth_ = std::make_unique<CoverageMatrix>(
      CoverageMatrix::FromModel(dataset->readers_, dataset->grid_, model));

  Rng calibration_rng(options.seed, /*stream=*/0xCA11B);
  dataset->calibrated_ = std::make_unique<CoverageMatrix>(
      Calibrator::Calibrate(*dataset->truth_, options.calibration_seconds,
                            calibration_rng));
  dataset->apriori_ = std::make_unique<AprioriModel>(
      dataset->building_, dataset->grid_, *dataset->calibrated_);

  TrajectoryGenerator trajectories(dataset->building_);
  ReadingGenerator readings(dataset->grid_, *dataset->truth_);
  std::uint64_t stream = 1;
  for (Timestamp duration : options.durations_ticks) {
    for (int i = 0; i < options.trajectories_per_duration; ++i) {
      Rng rng(options.seed, stream++);
      TrajectoryGenOptions motion = options.motion;
      motion.duration_ticks = duration;
      Item item;
      item.duration = duration;
      item.continuous = trajectories.Generate(motion, rng);
      item.ground_truth = item.continuous.ToDiscrete(dataset->building_);
      item.readings = readings.Generate(item.continuous, rng);
      item.lsequence =
          LSequence::FromReadings(item.readings, *dataset->apriori_);
      dataset->items_.push_back(std::move(item));
    }
  }
  return dataset;
}

std::vector<const Dataset::Item*> Dataset::ItemsWithDuration(
    Timestamp duration) const {
  std::vector<const Item*> out;
  for (const Item& item : items_) {
    if (item.duration == duration) out.push_back(&item);
  }
  return out;
}

ConstraintSet Dataset::MakeConstraints(
    const ConstraintFamilies& families) const {
  InferenceOptions inference;
  inference.families = families;
  inference.max_speed = options_.motion.max_speed;
  return InferConstraints(building_, walking_, inference);
}

}  // namespace rfidclean
