#ifndef RFIDCLEAN_GEN_DATASET_H_
#define RFIDCLEAN_GEN_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/inference.h"
#include "gen/trajectory_generator.h"
#include "map/building.h"
#include "map/building_grid.h"
#include "map/walking_distance.h"
#include "model/apriori.h"
#include "model/lsequence.h"
#include "model/rsequence.h"
#include "rfid/coverage_matrix.h"
#include "rfid/detection_model.h"
#include "rfid/reader.h"

namespace rfidclean {

/// Parameters of a full synthetic dataset in the style of §6.1. Defaults
/// mirror the paper; the evaluation harness scales trajectories_per_duration
/// down for quick runs.
struct DatasetOptions {
  int num_floors = 4;  ///< 4 = SYN1, 8 = SYN2.
  std::vector<Timestamp> durations_ticks = {600, 3600, 5400, 7200};
  int trajectories_per_duration = 25;
  double cell_size = 0.5;
  int calibration_seconds = 30;
  std::uint64_t seed = 1;
  DetectionModel::Params detection;
  TrajectoryGenOptions motion;  ///< duration_ticks is overridden per item.
  std::string name = "SYN";

  static DatasetOptions Syn1() {
    DatasetOptions options;
    options.num_floors = 4;
    options.name = "SYN1";
    return options;
  }
  static DatasetOptions Syn2() {
    DatasetOptions options;
    options.num_floors = 8;
    options.seed = 2;
    options.name = "SYN2";
    return options;
  }
};

/// A fully materialized dataset: the building, the reader deployment, the
/// ground-truth and calibrated coverage matrices, the a-priori model, the
/// walking distances, and one item per generated trajectory. Returned by
/// pointer: AprioriModel holds references into the owning struct.
class Dataset {
 public:
  /// Runs the whole §6 pipeline: build the building and its grid, place
  /// readers, derive ground-truth coverage from the antenna model, calibrate,
  /// compute walking distances, then generate the requested trajectories and
  /// their readings and l-sequences.
  static std::unique_ptr<Dataset> Build(const DatasetOptions& options);

  struct Item {
    Timestamp duration = 0;
    ContinuousTrajectory continuous;
    Trajectory ground_truth;
    RSequence readings;
    LSequence lsequence;
  };

  const DatasetOptions& options() const { return options_; }
  const Building& building() const { return building_; }
  const BuildingGrid& grid() const { return grid_; }
  const std::vector<Reader>& readers() const { return readers_; }
  const CoverageMatrix& truth_coverage() const { return *truth_; }
  const CoverageMatrix& calibrated_coverage() const { return *calibrated_; }
  const AprioriModel& apriori() const { return *apriori_; }
  const WalkingDistances& walking() const { return walking_; }
  const std::vector<Item>& items() const { return items_; }

  /// Items with the given duration (e.g. the paper's SYN1-60 bucket).
  std::vector<const Item*> ItemsWithDuration(Timestamp duration) const;

  /// Constraint set for the requested families, inferred from the map and
  /// max speed (§6.3) using this dataset's motion parameters.
  ConstraintSet MakeConstraints(const ConstraintFamilies& families) const;

 private:
  Dataset(const DatasetOptions& options, Building building);

  DatasetOptions options_;
  Building building_;
  BuildingGrid grid_;
  std::vector<Reader> readers_;
  std::unique_ptr<CoverageMatrix> truth_;
  std::unique_ptr<CoverageMatrix> calibrated_;
  std::unique_ptr<AprioriModel> apriori_;
  WalkingDistances walking_;
  std::vector<Item> items_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_GEN_DATASET_H_
