#ifndef RFIDCLEAN_GEN_READING_GENERATOR_H_
#define RFIDCLEAN_GEN_READING_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "gen/trajectory_generator.h"
#include "map/building_grid.h"
#include "model/rsequence.h"
#include "rfid/coverage_matrix.h"

namespace rfidclean {

/// The paper's reading-generator module (§6.4): transforms each continuous
/// position sample (x, y, τ) into a reading (τ, R) by locating the grid cell
/// c containing the point and putting each reader r into R independently
/// with probability F[r, c] — F interpreted as the per-second detection
/// probability, readers behaving independently.
class ReadingGenerator {
 public:
  /// `grid` and `truth` (the ground-truth coverage matrix) must outlive the
  /// generator. An index of candidate readers per cell is precomputed so
  /// generation touches only readers that can possibly fire.
  ReadingGenerator(const BuildingGrid& grid, const CoverageMatrix& truth);

  RSequence Generate(const ContinuousTrajectory& trajectory, Rng& rng) const;

 private:
  const BuildingGrid* grid_;
  const CoverageMatrix* truth_;
  std::vector<std::vector<ReaderId>> candidates_;  // per cell
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_GEN_READING_GENERATOR_H_
