#include "constraints/constraint_set.h"

#include <algorithm>

#include "common/check.h"
#include "common/fnv.h"

namespace rfidclean {

ConstraintSet::ConstraintSet(std::size_t num_locations)
    : num_locations_(num_locations) {
  RFID_CHECK_GT(num_locations, 0u);
  unreachable_.assign(num_locations * num_locations, false);
  travel_ticks_.assign(num_locations * num_locations, 0);
  latency_.assign(num_locations, 0);
  tt_from_.assign(num_locations, {});
  max_tt_from_.assign(num_locations, 0);
}

void ConstraintSet::AddUnreachable(LocationId from, LocationId to) {
  CheckId(from);
  CheckId(to);
  RFID_CHECK_NE(from, to);  // unreachable(l, l) would forbid staying put.
  std::size_t index = PairIndex(from, to);
  if (!unreachable_[index]) {
    unreachable_[index] = true;
    ++num_unreachable_;
  }
}

void ConstraintSet::AddTravelingTime(LocationId from, LocationId to,
                                     Timestamp min_ticks) {
  CheckId(from);
  CheckId(to);
  RFID_CHECK_NE(from, to);  // travelingTime(l, l, ·) is not a journey.
  // A bound of 0 is not a constraint at all — §3 defines travelingTime over
  // positive durations, so a 0 almost certainly means a field was dropped
  // on input. A bound of 1 is well-formed but vacuous (any move takes one
  // tick) and is ignored.
  RFID_CHECK_GT(min_ticks, 0);
  if (min_ticks == 1) return;
  // Single dedup path: keep the strongest (largest) bound, whether the
  // pair is fresh or already constrained.
  Timestamp& current = travel_ticks_[PairIndex(from, to)];
  if (min_ticks <= current) return;  // Duplicate no stronger than stored.
  if (current == 0) {
    ++num_traveling_time_;
    tt_from_[static_cast<std::size_t>(from)].push_back(
        TravelingTime{from, to, min_ticks});
  } else {
    for (TravelingTime& tt : tt_from_[static_cast<std::size_t>(from)]) {
      if (tt.to == to) {
        tt.min_ticks = min_ticks;
        break;  // Targets are unique within a source's list.
      }
    }
  }
  current = min_ticks;
  max_tt_from_[static_cast<std::size_t>(from)] =
      std::max(max_tt_from_[static_cast<std::size_t>(from)], min_ticks);
}

void ConstraintSet::AddLatency(LocationId location, Timestamp min_stay) {
  CheckId(location);
  // As in AddTravelingTime: 0 is a malformed input, 1 is vacuous (every
  // visit lasts one tick).
  RFID_CHECK_GT(min_stay, 0);
  if (min_stay == 1) return;
  Timestamp& current = latency_[static_cast<std::size_t>(location)];
  if (min_stay <= current) return;  // Duplicate no stronger than stored.
  if (current == 0) ++num_latency_;
  current = min_stay;
}

bool ConstraintSet::IsUnreachable(LocationId from, LocationId to) const {
  CheckId(from);
  CheckId(to);
  return unreachable_[PairIndex(from, to)];
}

Timestamp ConstraintSet::LatencyOf(LocationId location) const {
  CheckId(location);
  return latency_[static_cast<std::size_t>(location)];
}

Timestamp ConstraintSet::MinTravelTicks(LocationId from, LocationId to) const {
  CheckId(from);
  CheckId(to);
  return travel_ticks_[PairIndex(from, to)];
}

bool ConstraintSet::HasTravelingTimeFrom(LocationId from) const {
  CheckId(from);
  return !tt_from_[static_cast<std::size_t>(from)].empty();
}

Timestamp ConstraintSet::MaxTravelingTimeFrom(LocationId from) const {
  CheckId(from);
  return max_tt_from_[static_cast<std::size_t>(from)];
}

const std::vector<TravelingTime>& ConstraintSet::TravelingTimesFrom(
    LocationId from) const {
  CheckId(from);
  return tt_from_[static_cast<std::size_t>(from)];
}

std::uint64_t ConstraintSet::Digest() const {
  Fnv64 fnv;
  fnv.MixU64(static_cast<std::uint64_t>(num_locations_));
  // Walk the indexed stores, mixing only constrained entries (tagged by
  // index), so the digest stays cheap on sparse constraint sets and is
  // independent of Add* call order.
  for (std::size_t i = 0; i < unreachable_.size(); ++i) {
    if (unreachable_[i]) fnv.MixU64(static_cast<std::uint64_t>(i));
  }
  for (std::size_t i = 0; i < travel_ticks_.size(); ++i) {
    if (travel_ticks_[i] != 0) {
      fnv.MixU64(static_cast<std::uint64_t>(i));
      fnv.MixI64(travel_ticks_[i]);
    }
  }
  for (std::size_t i = 0; i < latency_.size(); ++i) {
    if (latency_[i] != 0) {
      fnv.MixU64(static_cast<std::uint64_t>(i));
      fnv.MixI64(latency_[i]);
    }
  }
  return fnv.Digest();
}

std::size_t ConstraintSet::PairIndex(LocationId from, LocationId to) const {
  return static_cast<std::size_t>(from) * num_locations_ +
         static_cast<std::size_t>(to);
}

void ConstraintSet::CheckId(LocationId id) const {
  RFID_CHECK_GE(id, 0);
  RFID_CHECK_LT(static_cast<std::size_t>(id), num_locations_);
}

}  // namespace rfidclean
