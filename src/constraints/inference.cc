#include "constraints/inference.h"

#include <cmath>

#include "common/check.h"

namespace rfidclean {

std::string ConstraintFamiliesLabel(const ConstraintFamilies& families) {
  std::string label;
  auto append = [&label](const char* part) {
    if (!label.empty()) label += "+";
    label += part;
  };
  if (families.direct_unreachability) append("DU");
  if (families.latency) append("LT");
  if (families.traveling_time) append("TT");
  if (label.empty()) label = "none";
  return label;
}

ConstraintSet InferConstraints(const Building& building,
                               const WalkingDistances& distances,
                               const InferenceOptions& options) {
  RFID_CHECK_GT(options.max_speed, 0.0);
  RFID_CHECK_EQ(distances.NumLocations(), building.NumLocations());
  const std::size_t n = building.NumLocations();
  ConstraintSet constraints(n);

  for (std::size_t i = 0; i < n; ++i) {
    const LocationId a = static_cast<LocationId>(i);
    if (options.families.latency &&
        building.location(a).kind != LocationKind::kCorridor) {
      constraints.AddLatency(a, options.latency_ticks);
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const LocationId b = static_cast<LocationId>(j);
      if (building.AreDirectlyConnected(a, b)) continue;
      if (options.families.direct_unreachability) {
        constraints.AddUnreachable(a, b);
      }
      if (options.families.traveling_time) {
        double meters = distances.MetersBetween(a, b);
        if (meters < kInfiniteDistance) {
          Timestamp ticks =
              static_cast<Timestamp>(std::ceil(meters / options.max_speed));
          constraints.AddTravelingTime(a, b, ticks);
        }
      }
    }
  }
  return constraints;
}

}  // namespace rfidclean
