#ifndef RFIDCLEAN_CONSTRAINTS_CONSTRAINT_H_
#define RFIDCLEAN_CONSTRAINTS_CONSTRAINT_H_

#include "map/location.h"
#include "model/reading.h"

namespace rfidclean {

/// unreachable(from, to): no object can move from `from` to `to` within one
/// time point (§3). Directional: doors can in principle be one-way.
struct DirectUnreachability {
  LocationId from = kInvalidLocation;
  LocationId to = kInvalidLocation;

  friend bool operator==(const DirectUnreachability&,
                         const DirectUnreachability&) = default;
};

/// travelingTime(from, to, min_ticks): moving from `from` to `to` takes at
/// least `min_ticks` time points (§3). Only meaningful for min_ticks >= 2:
/// any move already takes one tick.
struct TravelingTime {
  LocationId from = kInvalidLocation;
  LocationId to = kInvalidLocation;
  Timestamp min_ticks = 0;

  friend bool operator==(const TravelingTime&, const TravelingTime&) = default;
};

/// latency(location, min_stay): every stay at `location` lasts at least
/// `min_stay` consecutive time points (§3). Only meaningful for
/// min_stay >= 2: every visit already lasts one tick.
struct Latency {
  LocationId location = kInvalidLocation;
  Timestamp min_stay = 0;

  friend bool operator==(const Latency&, const Latency&) = default;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_CONSTRAINTS_CONSTRAINT_H_
