#ifndef RFIDCLEAN_CONSTRAINTS_INFERENCE_H_
#define RFIDCLEAN_CONSTRAINTS_INFERENCE_H_

#include <string>

#include "constraints/constraint_set.h"
#include "map/building.h"
#include "map/walking_distance.h"

namespace rfidclean {

/// Which constraint families to infer. The paper's evaluation compares
/// CTG(DU), CTG(DU+LT) and CTG(DU+LT+TT).
struct ConstraintFamilies {
  bool direct_unreachability = true;
  bool latency = false;
  bool traveling_time = false;

  static ConstraintFamilies Du() { return {true, false, false}; }
  static ConstraintFamilies DuLt() { return {true, true, false}; }
  static ConstraintFamilies DuLtTt() { return {true, true, true}; }
};

/// Returns "DU", "DU+LT", "DU+LT+TT", ... for reports.
std::string ConstraintFamiliesLabel(const ConstraintFamilies& families);

/// Parameters of the automatic inference of §6.3.
struct InferenceOptions {
  ConstraintFamilies families = ConstraintFamilies::DuLtTt();

  /// Maximum speed of the monitored objects, in meters per tick
  /// (the paper assumes people walking at up to 2 m/s).
  double max_speed = 2.0;

  /// Minimum-stay bound of the inferred LT constraints, in ticks
  /// (the paper imposes 5-second stays at every location but corridors).
  Timestamp latency_ticks = 5;
};

/// Infers the constraint set from the map and the objects' motility (§6.3):
///  - DU: unreachable(l1, l2) for every ordered pair of distinct locations
///    not directly connected by a door or staircase;
///  - LT: latency(l, latency_ticks) for every location except corridors;
///  - TT: travelingTime(l1, l2, ceil(walk(l1, l2) / max_speed)) for every
///    ordered pair that is connected but not directly connected (bounds of
///    one tick or less are vacuous and skipped).
/// This is the paper's point that the only inputs needed are the map and the
/// maximum speed.
ConstraintSet InferConstraints(const Building& building,
                               const WalkingDistances& distances,
                               const InferenceOptions& options);

}  // namespace rfidclean

#endif  // RFIDCLEAN_CONSTRAINTS_INFERENCE_H_
