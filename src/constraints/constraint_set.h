#ifndef RFIDCLEAN_CONSTRAINTS_CONSTRAINT_SET_H_
#define RFIDCLEAN_CONSTRAINTS_CONSTRAINT_SET_H_

#include <cstdint>
#include <vector>

#include "constraints/constraint.h"

namespace rfidclean {

/// An indexed set IC of integrity constraints over a fixed universe of
/// `num_locations` locations, with the constant-time lookups the cleaning
/// algorithm needs:
///  - IsUnreachable(l1, l2)                       (Def. 3, condition 2)
///  - LatencyOf(l)                                (conditions 3/4)
///  - MinTravelTicks(l1, l2), HasTravelingTimeFrom (conditions 5/6)
///  - MaxTravelingTimeFrom(l) — the paper's maxTravelingTime_IC(l), used to
///    expire entries of the TL component of location nodes.
///
/// Adding a duplicate DU constraint is a no-op; duplicate TT/LT constraints
/// keep the strongest (largest) bound.
///
/// Malformed constraints are rejected with RFID_CHECK (program abort): a
/// self-loop DU pair (staying put must always be possible), a TT self-loop,
/// and TT/LT bounds of zero or less (§3 defines both over positive
/// durations — a 0 means a dropped input field, not a vacuous constraint).
/// Bounds of exactly 1 are well-formed but vacuous and are ignored.
class ConstraintSet {
 public:
  explicit ConstraintSet(std::size_t num_locations);

  std::size_t num_locations() const { return num_locations_; }

  void AddUnreachable(LocationId from, LocationId to);
  void AddTravelingTime(LocationId from, LocationId to, Timestamp min_ticks);
  void AddLatency(LocationId location, Timestamp min_stay);

  bool IsUnreachable(LocationId from, LocationId to) const;

  /// Minimum stay at `location`, or 0 when unconstrained.
  Timestamp LatencyOf(LocationId location) const;
  bool HasLatency(LocationId location) const { return LatencyOf(location) > 1; }

  /// Minimum ticks to travel from -> to, or 0 when unconstrained.
  Timestamp MinTravelTicks(LocationId from, LocationId to) const;

  /// True when some travelingTime(from, ·, ·) constraint exists.
  bool HasTravelingTimeFrom(LocationId from) const;

  /// max_{travelingTime(from, l', nu) in IC} nu, or 0 when none exists.
  Timestamp MaxTravelingTimeFrom(LocationId from) const;

  /// All TT constraints with the given first argument.
  const std::vector<TravelingTime>& TravelingTimesFrom(LocationId from) const;

  /// Stable FNV-1a digest of the constraint content (universe size plus
  /// every DU pair, TT bound and LT bound). Order-insensitive with respect
  /// to insertion: the digest walks the indexed stores, not the add order.
  /// Used as the constraint hash in trace provenance.
  std::uint64_t Digest() const;

  std::size_t NumUnreachable() const { return num_unreachable_; }
  std::size_t NumTravelingTime() const { return num_traveling_time_; }
  std::size_t NumLatency() const { return num_latency_; }
  std::size_t TotalConstraints() const {
    return num_unreachable_ + num_traveling_time_ + num_latency_;
  }

 private:
  std::size_t PairIndex(LocationId from, LocationId to) const;
  void CheckId(LocationId id) const;

  std::size_t num_locations_;
  std::vector<bool> unreachable_;       // num_locations^2
  std::vector<Timestamp> travel_ticks_; // num_locations^2, 0 = none
  std::vector<Timestamp> latency_;      // per location, 0 = none
  std::vector<std::vector<TravelingTime>> tt_from_;
  std::vector<Timestamp> max_tt_from_;
  std::size_t num_unreachable_ = 0;
  std::size_t num_traveling_time_ = 0;
  std::size_t num_latency_ = 0;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_CONSTRAINTS_CONSTRAINT_SET_H_
