#include "io/dot_export.h"

#include "common/strings.h"

namespace rfidclean {

void WriteDot(const CtGraph& graph, std::ostream& os,
              const Building* building, std::size_t max_nodes) {
  os << "digraph ctgraph {\n  rankdir=LR;\n  node [shape=box];\n";
  bool truncated = graph.NumNodes() > max_nodes;
  std::size_t limit = truncated ? max_nodes : graph.NumNodes();
  auto name_of = [building](LocationId location) {
    if (building != nullptr && location >= 0 &&
        static_cast<std::size_t>(location) < building->NumLocations()) {
      return building->location(location).name;
    }
    return StrFormat("L%d", location);
  };
  for (Timestamp t = 0; t < graph.length(); ++t) {
    os << "  { rank=same;";
    for (NodeId id : graph.NodesAt(t)) {
      if (static_cast<std::size_t>(id) < limit) os << " n" << id << ";";
    }
    os << " }\n";
  }
  for (std::size_t i = 0; i < limit; ++i) {
    const CtGraph::Node& node = graph.node(static_cast<NodeId>(i));
    std::string label =
        StrFormat("t=%d\\n%s", node.time,
                  name_of(node.key.location).c_str());
    if (node.time == 0) {
      label += StrFormat("\\np=%.3f", node.source_probability);
    }
    os << "  n" << i << " [label=\"" << label << "\"];\n";
  }
  for (std::size_t i = 0; i < limit; ++i) {
    const CtGraph::Node& node = graph.node(static_cast<NodeId>(i));
    for (const CtGraph::Edge& edge : node.out_edges) {
      if (static_cast<std::size_t>(edge.to) >= limit) continue;
      os << "  n" << i << " -> n" << edge.to
         << StrFormat(" [label=\"%.3f\"];\n", edge.probability);
    }
  }
  if (truncated) {
    os << StrFormat("  // truncated: %zu of %zu nodes shown\n", limit,
                    graph.NumNodes());
  }
  os << "}\n";
}

}  // namespace rfidclean
