#ifndef RFIDCLEAN_IO_BUILDING_IO_H_
#define RFIDCLEAN_IO_BUILDING_IO_H_

#include <istream>
#include <ostream>

#include "common/result.h"
#include "map/building.h"

namespace rfidclean {

/// Serializes a building as a line-oriented text format (the "graph of
/// locations" input of §6.4):
///
///   building <floors> <minx> <miny> <maxx> <maxy>
///   location <name> <room|corridor|stairwell> <floor> <minx> <miny> <maxx> <maxy>
///   door <name_a> <name_b> <x> <y> <width>
///   stairs <name_lower> <name_upper> <length>
///
/// Lines starting with '#' and blank lines are ignored on input. Location
/// names must not contain whitespace.
void WriteBuilding(const Building& building, std::ostream& os);

/// Parses the format written by WriteBuilding, running the full
/// BuildingBuilder validation.
Result<Building> ReadBuilding(std::istream& is);

}  // namespace rfidclean

#endif  // RFIDCLEAN_IO_BUILDING_IO_H_
