#include "io/building_io.h"

#include <charconv>
#include <cmath>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rfidclean {

namespace {

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

bool ParseDouble(const std::string& text, double* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  // from_chars accepts "inf"/"nan" spellings; non-finite geometry would
  // poison every downstream distance computation, so treat it as malformed
  // input rather than a number.
  return ec == std::errc() && ptr == text.data() + text.size() &&
         std::isfinite(*out);
}

bool ParseInt(const std::string& text, int* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

std::optional<LocationKind> ParseKind(const std::string& text) {
  if (text == "room") return LocationKind::kRoom;
  if (text == "corridor") return LocationKind::kCorridor;
  if (text == "stairwell") return LocationKind::kStairwell;
  return std::nullopt;
}

}  // namespace

void WriteBuilding(const Building& building, std::ostream& os) {
  const Rect& bounds = building.floor_bounds();
  os << StrFormat("building %d %g %g %g %g\n", building.num_floors(),
                  bounds.min.x, bounds.min.y, bounds.max.x, bounds.max.y);
  for (const Location& location : building.locations()) {
    os << StrFormat("location %s %s %d %g %g %g %g\n",
                    location.name.c_str(),
                    LocationKindToString(location.kind), location.floor,
                    location.footprint.min.x, location.footprint.min.y,
                    location.footprint.max.x, location.footprint.max.y);
  }
  for (const Door& door : building.doors()) {
    os << StrFormat("door %s %s %g %g %g\n",
                    building.location(door.a).name.c_str(),
                    building.location(door.b).name.c_str(), door.position.x,
                    door.position.y, door.width);
  }
  for (const StairEdge& stair : building.stairs()) {
    os << StrFormat("stairs %s %s %g\n",
                    building.location(stair.lower).name.c_str(),
                    building.location(stair.upper).name.c_str(),
                    stair.length);
  }
}

Result<Building> ReadBuilding(std::istream& is) {
  obs::PhaseTimer phase_timer(obs::Phase::kIoParse);
  RFID_TRACE_SPAN(span, "io", "io_parse_building");
  std::optional<BuildingBuilder> builder;
  std::unordered_map<std::string, LocationId> by_name;
  std::string line;
  int line_number = 0;
  auto error = [&line_number](const char* message) {
    RFID_STATS(obs::Add(obs::Counter::kIoRowsRejected));
    return InvalidArgumentError(
        StrFormat("line %d: %s", line_number, message));
  };
  while (std::getline(is, line)) {
    ++line_number;
    std::string_view content = StripWhitespace(line);
    if (content.empty() || content[0] == '#') continue;
    std::vector<std::string> tokens = Tokenize(content);
    const std::string& kind = tokens[0];
    if (kind == "building") {
      if (builder.has_value()) return error("duplicate 'building' line");
      double coords[4];
      int floors = 0;
      if (tokens.size() != 6 || !ParseInt(tokens[1], &floors) ||
          !ParseDouble(tokens[2], &coords[0]) ||
          !ParseDouble(tokens[3], &coords[1]) ||
          !ParseDouble(tokens[4], &coords[2]) ||
          !ParseDouble(tokens[5], &coords[3]) || floors < 1) {
        return error("expected 'building <floors> <minx> <miny> <maxx> <maxy>'");
      }
      builder.emplace(
          Rect{{coords[0], coords[1]}, {coords[2], coords[3]}});
    } else if (kind == "location") {
      if (!builder.has_value()) return error("'location' before 'building'");
      double coords[4];
      int floor = 0;
      if (tokens.size() != 8 || !ParseInt(tokens[3], &floor) ||
          !ParseDouble(tokens[4], &coords[0]) ||
          !ParseDouble(tokens[5], &coords[1]) ||
          !ParseDouble(tokens[6], &coords[2]) ||
          !ParseDouble(tokens[7], &coords[3])) {
        return error(
            "expected 'location <name> <kind> <floor> <minx> <miny> <maxx> "
            "<maxy>'");
      }
      std::optional<LocationKind> location_kind = ParseKind(tokens[2]);
      if (!location_kind.has_value()) return error("unknown location kind");
      if (by_name.count(tokens[1]) > 0) return error("duplicate location");
      LocationId id = builder->AddLocation(
          tokens[1], *location_kind, floor,
          Rect{{coords[0], coords[1]}, {coords[2], coords[3]}});
      by_name.emplace(tokens[1], id);
    } else if (kind == "door") {
      if (!builder.has_value()) return error("'door' before 'building'");
      double x = 0.0, y = 0.0, width = 0.0;
      if (tokens.size() != 6 || !ParseDouble(tokens[3], &x) ||
          !ParseDouble(tokens[4], &y) || !ParseDouble(tokens[5], &width)) {
        return error("expected 'door <a> <b> <x> <y> <width>'");
      }
      auto a = by_name.find(tokens[1]);
      auto b = by_name.find(tokens[2]);
      if (a == by_name.end() || b == by_name.end()) {
        return error("door references unknown location");
      }
      builder->AddDoor(a->second, b->second, {x, y}, width);
    } else if (kind == "stairs") {
      if (!builder.has_value()) return error("'stairs' before 'building'");
      double length = 0.0;
      if (tokens.size() != 4 || !ParseDouble(tokens[3], &length)) {
        return error("expected 'stairs <lower> <upper> <length>'");
      }
      auto lower = by_name.find(tokens[1]);
      auto upper = by_name.find(tokens[2]);
      if (lower == by_name.end() || upper == by_name.end()) {
        return error("stairs reference unknown location");
      }
      builder->AddStairs(lower->second, upper->second, length);
    } else {
      return error("unknown directive");
    }
    RFID_STATS(obs::Add(obs::Counter::kIoRowsParsed));
  }
  if (!builder.has_value()) {
    return InvalidArgumentError("no 'building' line found");
  }
  RFID_TRACE(span.AddArg("rows", static_cast<std::uint64_t>(line_number)));
  return builder->Build();
}

}  // namespace rfidclean
