#ifndef RFIDCLEAN_IO_CTGRAPH_IO_H_
#define RFIDCLEAN_IO_CTGRAPH_IO_H_

#include <istream>
#include <ostream>

#include "common/result.h"
#include "core/ct_graph.h"

namespace rfidclean {

/// Serializes a ct-graph as a line-oriented text format, so cleaned data
/// can be warehoused and queried later without re-running the cleaning
/// (the Lahar-style "Markovian stream" storage angle of §5's remark):
///
///   ctgraph <length> <num_nodes>
///   node <id> <time> <location> <delta> <source_prob> <tl_time,tl_loc>*
///   edge <from> <to> <probability>
///
/// Probabilities are written with 17 significant digits so a round trip is
/// bit-faithful for doubles.
void WriteCtGraph(const CtGraph& graph, std::ostream& os);

/// Parses the format written by WriteCtGraph and re-validates every graph
/// invariant (CtGraph::Assemble). Document-level defects that Assemble
/// would only report obliquely — duplicate or missing node rows, edge
/// targets outside the declared node count, non-finite probabilities — are
/// rejected at parse time with the offending line number.
Result<CtGraph> ReadCtGraph(std::istream& is);

}  // namespace rfidclean

#endif  // RFIDCLEAN_IO_CTGRAPH_IO_H_
