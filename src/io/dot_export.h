#ifndef RFIDCLEAN_IO_DOT_EXPORT_H_
#define RFIDCLEAN_IO_DOT_EXPORT_H_

#include <ostream>

#include "core/ct_graph.h"
#include "map/building.h"

namespace rfidclean {

/// Renders a ct-graph in GraphViz DOT format, layered left-to-right by
/// timestamp, edges labeled with their conditioned probabilities. With a
/// building, nodes show location names; otherwise "L<id>". Intended for
/// debugging and documentation of small graphs: emission is truncated (with
/// a comment) beyond `max_nodes`.
void WriteDot(const CtGraph& graph, std::ostream& os,
              const Building* building = nullptr,
              std::size_t max_nodes = 400);

}  // namespace rfidclean

#endif  // RFIDCLEAN_IO_DOT_EXPORT_H_
