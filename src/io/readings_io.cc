#include "io/readings_io.h"

#include <charconv>
#include <string>

#include "common/strings.h"

namespace rfidclean {

namespace {

bool ParseInt(std::string_view text, long* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace

void WriteReadingsCsv(const RSequence& sequence, std::ostream& os) {
  os << "time,readers\n";
  for (Timestamp t = 0; t < sequence.length(); ++t) {
    os << t << ',';
    const ReaderSet& readers = sequence.ReadersAt(t);
    for (std::size_t i = 0; i < readers.size(); ++i) {
      if (i > 0) os << ' ';
      os << readers[i];
    }
    os << '\n';
  }
}

Result<RSequence> ReadReadingsCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || StripWhitespace(line) != "time,readers") {
    return InvalidArgumentError("missing 'time,readers' header");
  }
  std::vector<Reading> readings;
  int line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    std::string_view content = StripWhitespace(line);
    if (content.empty()) continue;
    std::size_t comma = content.find(',');
    if (comma == std::string_view::npos) {
      return InvalidArgumentError(
          StrFormat("line %d: expected 'time,readers'", line_number));
    }
    Reading reading;
    long time = 0;
    if (!ParseInt(StripWhitespace(content.substr(0, comma)), &time) ||
        time < 0) {
      return InvalidArgumentError(
          StrFormat("line %d: invalid timestamp", line_number));
    }
    reading.time = static_cast<Timestamp>(time);
    for (const std::string& token :
         StrSplit(content.substr(comma + 1), ' ')) {
      std::string_view id_text = StripWhitespace(token);
      if (id_text.empty()) continue;
      long id = 0;
      if (!ParseInt(id_text, &id) || id < 0) {
        return InvalidArgumentError(
            StrFormat("line %d: invalid reader id", line_number));
      }
      reading.readers.push_back(static_cast<ReaderId>(id));
    }
    readings.push_back(std::move(reading));
  }
  return RSequence::Create(std::move(readings));
}

}  // namespace rfidclean
