#include "io/readings_io.h"

#include <charconv>
#include <limits>
#include <map>
#include <string>
#include <unordered_set>

#include "common/check.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rfidclean {

namespace {

bool ParseInt(std::string_view text, long* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseInt64(std::string_view text, long long* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

void WriteReaderSet(const ReaderSet& readers, std::ostream& os) {
  for (std::size_t i = 0; i < readers.size(); ++i) {
    if (i > 0) os << ' ';
    os << readers[i];
  }
}

/// Parses "<time>,<space-separated readers>" into `reading` (shared tail of
/// the single-tag and multi-tag row grammars).
Status ParseTimeAndReaders(std::string_view content, int line_number,
                           Reading* reading) {
  std::size_t comma = content.find(',');
  if (comma == std::string_view::npos) {
    return InvalidArgumentError(
        StrFormat("line %d: expected 'time,readers'", line_number));
  }
  long time = 0;
  if (!ParseInt(StripWhitespace(content.substr(0, comma)), &time) ||
      time < 0) {
    return InvalidArgumentError(
        StrFormat("line %d: invalid timestamp", line_number));
  }
  // Range-check before narrowing: Timestamp is 32-bit while ParseInt
  // accepts the full `long` range, so a value like 4294967296 would
  // otherwise truncate to 0 and silently misparse the row.
  if (time > static_cast<long>(std::numeric_limits<Timestamp>::max())) {
    return InvalidArgumentError(
        StrFormat("line %d: timestamp %ld out of range", line_number, time));
  }
  reading->time = static_cast<Timestamp>(time);
  for (const std::string& token : StrSplit(content.substr(comma + 1), ' ')) {
    std::string_view id_text = StripWhitespace(token);
    if (id_text.empty()) continue;
    long id = 0;
    if (!ParseInt(id_text, &id) || id < 0) {
      return InvalidArgumentError(
          StrFormat("line %d: invalid reader id", line_number));
    }
    if (id > static_cast<long>(std::numeric_limits<ReaderId>::max())) {
      return InvalidArgumentError(
          StrFormat("line %d: reader id %ld out of range", line_number, id));
    }
    reading->readers.push_back(static_cast<ReaderId>(id));
  }
  return Status::Ok();
}

}  // namespace

void WriteReadingsCsv(const RSequence& sequence, std::ostream& os) {
  os << "time,readers\n";
  for (Timestamp t = 0; t < sequence.length(); ++t) {
    os << t << ',';
    WriteReaderSet(sequence.ReadersAt(t), os);
    os << '\n';
  }
}

Result<RSequence> ReadReadingsCsv(std::istream& is) {
  obs::PhaseTimer phase_timer(obs::Phase::kIoParse);
  RFID_TRACE_SPAN(span, "io", "io_parse_readings");
  std::string line;
  if (!std::getline(is, line) || StripWhitespace(line) != "time,readers") {
    RFID_STATS(obs::Add(obs::Counter::kIoRowsRejected));
    return InvalidArgumentError("missing 'time,readers' header");
  }
  std::vector<Reading> readings;
  std::unordered_set<Timestamp> seen_times;
  int line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    std::string_view content = StripWhitespace(line);
    if (content.empty()) continue;
    Reading reading;
    Status parsed = ParseTimeAndReaders(content, line_number, &reading);
    // Duplicates are also structurally invalid (RSequence::Create requires
    // exact 0..n-1 coverage), but detecting them here attaches the line
    // number of the offending row.
    if (parsed.ok() && !seen_times.insert(reading.time).second) {
      parsed = InvalidArgumentError(
          StrFormat("line %d: duplicate time %d", line_number,
                    static_cast<int>(reading.time)));
    }
    if (!parsed.ok()) {
      RFID_STATS(obs::Add(obs::Counter::kIoRowsRejected));
      return parsed;
    }
    RFID_STATS(obs::Add(obs::Counter::kIoRowsParsed));
    readings.push_back(std::move(reading));
  }
  RFID_TRACE(span.AddArg("rows", readings.size()));
  return RSequence::Create(std::move(readings));
}

void WriteMultiTagReadingsCsv(const std::vector<TagReadings>& tags,
                              std::ostream& os) {
  std::unordered_set<TagId> seen;
  os << kMultiTagReadingsHeader << '\n';
  for (const TagReadings& tag : tags) {
    RFID_CHECK(seen.insert(tag.tag).second);  // distinct tag ids
    for (Timestamp t = 0; t < tag.readings.length(); ++t) {
      os << tag.tag << ',' << t << ',';
      WriteReaderSet(tag.readings.ReadersAt(t), os);
      os << '\n';
    }
  }
}

Result<std::vector<TagReadings>> ReadMultiTagReadingsCsv(std::istream& is) {
  obs::PhaseTimer phase_timer(obs::Phase::kIoParse);
  RFID_TRACE_SPAN(span, "io", "io_parse_readings_multi");
  std::string line;
  if (!std::getline(is, line) ||
      StripWhitespace(line) != kMultiTagReadingsHeader) {
    RFID_STATS(obs::Add(obs::Counter::kIoRowsRejected));
    return InvalidArgumentError("missing 'tag,time,readers' header");
  }
  // std::map: tags come out sorted by id, independent of row order.
  struct TagRows {
    std::vector<Reading> readings;
    std::unordered_set<Timestamp> seen_times;
  };
  std::map<TagId, TagRows> by_tag;
  int line_number = 1;
  auto reject = [&](Status status) {
    RFID_STATS(obs::Add(obs::Counter::kIoRowsRejected));
    return status;
  };
  while (std::getline(is, line)) {
    ++line_number;
    std::string_view content = StripWhitespace(line);
    if (content.empty()) continue;
    std::size_t comma = content.find(',');
    if (comma == std::string_view::npos) {
      return reject(InvalidArgumentError(
          StrFormat("line %d: expected 'tag,time,readers'", line_number)));
    }
    long long tag = 0;
    if (!ParseInt64(StripWhitespace(content.substr(0, comma)), &tag) ||
        tag < 0) {
      return reject(InvalidArgumentError(
          StrFormat("line %d: invalid tag id", line_number)));
    }
    Reading reading;
    Status parsed = ParseTimeAndReaders(content.substr(comma + 1),
                                        line_number, &reading);
    if (!parsed.ok()) return reject(std::move(parsed));
    TagRows& rows = by_tag[static_cast<TagId>(tag)];
    if (!rows.seen_times.insert(reading.time).second) {
      return reject(InvalidArgumentError(
          StrFormat("line %d: duplicate time %d for tag %lld", line_number,
                    static_cast<int>(reading.time), tag)));
    }
    RFID_STATS(obs::Add(obs::Counter::kIoRowsParsed));
    rows.readings.push_back(std::move(reading));
  }
  if (by_tag.empty()) {
    return InvalidArgumentError("multi-tag readings file has no data rows");
  }
  RFID_TRACE(span.AddArg("tags", by_tag.size()));
  std::vector<TagReadings> tags;
  tags.reserve(by_tag.size());
  for (auto& [tag, rows] : by_tag) {
    // RSequence::Create enforces the per-tag 0..n-1 coverage, rejecting
    // gaps (duplicates were already rejected with their line number above);
    // prefix its message with the tag.
    Result<RSequence> sequence = RSequence::Create(std::move(rows.readings));
    if (!sequence.ok()) {
      return Status(sequence.status().code(),
                    StrFormat("tag %lld: %s", static_cast<long long>(tag),
                              sequence.status().message().c_str()));
    }
    tags.push_back(TagReadings{tag, std::move(sequence).value()});
  }
  return tags;
}

}  // namespace rfidclean
