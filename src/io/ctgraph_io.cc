#include "io/ctgraph_io.h"

#include <charconv>
#include <cmath>
#include <string>
#include <vector>

#include "common/strings.h"

namespace rfidclean {

namespace {

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

bool ParseLong(const std::string& text, long* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseDouble(const std::string& text, double* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace

void WriteCtGraph(const CtGraph& graph, std::ostream& os) {
  os << StrFormat("ctgraph %d %zu\n", graph.length(), graph.NumNodes());
  for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
    const CtGraph::Node& node = graph.node(static_cast<NodeId>(i));
    os << StrFormat("node %zu %d %d %d %.17g", i, node.time,
                    node.key.location, node.key.delta,
                    node.source_probability);
    node.key.departures.ForEach([&os](const Departure& d) {
      os << StrFormat(" %d,%d", d.time, d.location);
    });
    os << '\n';
  }
  for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
    for (const CtGraph::Edge& edge :
         graph.node(static_cast<NodeId>(i)).out_edges) {
      os << StrFormat("edge %zu %d %.17g\n", i, edge.to, edge.probability);
    }
  }
}

Result<CtGraph> ReadCtGraph(std::istream& is) {
  std::string line;
  int line_number = 0;
  auto error = [&line_number](const char* message) {
    return InvalidArgumentError(
        StrFormat("line %d: %s", line_number, message));
  };

  Timestamp length = 0;
  std::vector<CtGraph::Node> nodes;
  std::vector<bool> node_seen;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++line_number;
    std::string_view content = StripWhitespace(line);
    if (content.empty() || content[0] == '#') continue;
    std::vector<std::string> tokens = Tokenize(content);
    if (tokens[0] == "ctgraph") {
      long parsed_length = 0;
      long num_nodes = 0;
      if (saw_header || tokens.size() != 3 ||
          !ParseLong(tokens[1], &parsed_length) ||
          !ParseLong(tokens[2], &num_nodes) || parsed_length < 1 ||
          num_nodes < 1) {
        return error("expected 'ctgraph <length> <num_nodes>'");
      }
      saw_header = true;
      length = static_cast<Timestamp>(parsed_length);
      nodes.resize(static_cast<std::size_t>(num_nodes));
      node_seen.assign(nodes.size(), false);
    } else if (tokens[0] == "node") {
      if (!saw_header) return error("'node' before 'ctgraph' header");
      long id = 0, time = 0, location = 0, delta = 0;
      double source_probability = 0.0;
      if (tokens.size() < 6 || !ParseLong(tokens[1], &id) ||
          !ParseLong(tokens[2], &time) || !ParseLong(tokens[3], &location) ||
          !ParseLong(tokens[4], &delta) ||
          !ParseDouble(tokens[5], &source_probability)) {
        return error(
            "expected 'node <id> <time> <location> <delta> <source_prob> "
            "<tl>*'");
      }
      if (id < 0 || static_cast<std::size_t>(id) >= nodes.size()) {
        return error("node id out of range");
      }
      if (node_seen[static_cast<std::size_t>(id)]) {
        // A silent overwrite would drop the first row's TL entries and
        // keep its edges — a mangled graph that may still pass Assemble.
        return InvalidArgumentError(
            StrFormat("line %d: duplicate row for node %ld", line_number, id));
      }
      node_seen[static_cast<std::size_t>(id)] = true;
      if (!std::isfinite(source_probability)) {
        // std::from_chars accepts "inf"/"nan" spellings; a non-finite mass
        // would poison every conditioned probability downstream.
        return error("non-finite source probability");
      }
      CtGraph::Node& node = nodes[static_cast<std::size_t>(id)];
      node.time = static_cast<Timestamp>(time);
      node.key.location = static_cast<LocationId>(location);
      node.key.delta = static_cast<Timestamp>(delta);
      node.source_probability = source_probability;
      for (std::size_t i = 6; i < tokens.size(); ++i) {
        std::size_t comma = tokens[i].find(',');
        long tl_time = 0, tl_location = 0;
        if (comma == std::string::npos ||
            !ParseLong(tokens[i].substr(0, comma), &tl_time) ||
            !ParseLong(tokens[i].substr(comma + 1), &tl_location)) {
          return error("malformed TL entry, expected '<time>,<location>'");
        }
        node.key.departures.push_back(
            Departure{static_cast<Timestamp>(tl_time),
                      static_cast<LocationId>(tl_location)});
      }
    } else if (tokens[0] == "edge") {
      if (!saw_header) return error("'edge' before 'ctgraph' header");
      long from = 0, to = 0;
      double probability = 0.0;
      if (tokens.size() != 4 || !ParseLong(tokens[1], &from) ||
          !ParseLong(tokens[2], &to) ||
          !ParseDouble(tokens[3], &probability)) {
        return error("expected 'edge <from> <to> <probability>'");
      }
      if (from < 0 || static_cast<std::size_t>(from) >= nodes.size()) {
        return error("edge source out of range");
      }
      if (to < 0 || static_cast<std::size_t>(to) >= nodes.size()) {
        // Assemble would reject the dangling target too, but only after the
        // whole document is consumed and without naming the line.
        return error("edge target out of range");
      }
      if (!std::isfinite(probability)) {
        return error("non-finite edge probability");
      }
      nodes[static_cast<std::size_t>(from)].out_edges.push_back(
          CtGraph::Edge{static_cast<NodeId>(to), probability});
    } else {
      return error("unknown directive");
    }
  }
  if (!saw_header) return InvalidArgumentError("no 'ctgraph' header found");
  for (std::size_t i = 0; i < node_seen.size(); ++i) {
    if (!node_seen[i]) {
      // A missing row leaves a default-constructed node whose rejection by
      // Assemble ("empty layer", "unreachable node") would obscure the
      // actual defect: the document never declared the node.
      return InvalidArgumentError(
          StrFormat("node %zu declared in header but has no 'node' row", i));
    }
  }
  return CtGraph::Assemble(std::move(nodes), length);
}

}  // namespace rfidclean
