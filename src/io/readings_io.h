#ifndef RFIDCLEAN_IO_READINGS_IO_H_
#define RFIDCLEAN_IO_READINGS_IO_H_

#include <istream>
#include <ostream>
#include <vector>

#include "common/result.h"
#include "model/reading.h"
#include "model/rsequence.h"

namespace rfidclean {

/// Serializes a reading sequence as CSV with header "time,readers", one row
/// per time point, readers as space-separated ids (empty field = no
/// detection):
///
///   time,readers
///   0,3 7
///   1,
///   2,7
void WriteReadingsCsv(const RSequence& sequence, std::ostream& os);

/// Parses the format written by WriteReadingsCsv. Rows may appear in any
/// order; timestamps must cover 0..n-1 exactly once.
Result<RSequence> ReadReadingsCsv(std::istream& is);

/// One tag's reading sequence within a multi-tag file.
struct TagReadings {
  TagId tag = 0;
  RSequence readings;
};

/// Header line distinguishing the multi-tag format from the single-tag one;
/// callers sniff the first line of a file to pick the parser (see
/// rfidclean_cli clean --jobs).
inline constexpr char kMultiTagReadingsHeader[] = "tag,time,readers";

/// Serializes many tags' reading sequences as CSV with header
/// "tag,time,readers", one row per (tag, time) pair:
///
///   tag,time,readers
///   2,0,3 7
///   2,1,
///   5,0,1
///
/// Tags are written in the given order and must have distinct ids
/// (RFID_CHECK). Per-tag sequence lengths may differ.
void WriteMultiTagReadingsCsv(const std::vector<TagReadings>& tags,
                              std::ostream& os);

/// Parses the format written by WriteMultiTagReadingsCsv. Rows may
/// interleave tags and timestamps arbitrarily; per tag, timestamps must
/// cover 0..n_tag-1 exactly once. Duplicate (tag, time) rows, negative
/// ids, and files with no data rows are errors. Tags are returned sorted
/// by ascending id, so the result is independent of row order.
Result<std::vector<TagReadings>> ReadMultiTagReadingsCsv(std::istream& is);

}  // namespace rfidclean

#endif  // RFIDCLEAN_IO_READINGS_IO_H_
