#ifndef RFIDCLEAN_IO_READINGS_IO_H_
#define RFIDCLEAN_IO_READINGS_IO_H_

#include <istream>
#include <ostream>

#include "common/result.h"
#include "model/rsequence.h"

namespace rfidclean {

/// Serializes a reading sequence as CSV with header "time,readers", one row
/// per time point, readers as space-separated ids (empty field = no
/// detection):
///
///   time,readers
///   0,3 7
///   1,
///   2,7
void WriteReadingsCsv(const RSequence& sequence, std::ostream& os);

/// Parses the format written by WriteReadingsCsv. Rows may appear in any
/// order; timestamps must cover 0..n-1 exactly once.
Result<RSequence> ReadReadingsCsv(std::istream& is);

}  // namespace rfidclean

#endif  // RFIDCLEAN_IO_READINGS_IO_H_
