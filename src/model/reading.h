#ifndef RFIDCLEAN_MODEL_READING_H_
#define RFIDCLEAN_MODEL_READING_H_

#include <cstdint>
#include <vector>

#include "rfid/reader.h"

namespace rfidclean {

/// Discrete time point. The library's tick granularity is abstract; all the
/// shipped generators and constraint inferencers use 1 tick = 1 second, as
/// the paper's evaluation does.
using Timestamp = std::int32_t;

/// Identifier of one monitored object (the tag's EPC). The paper cleans a
/// single object at a time, so the single-tag pipeline never materializes
/// one; multi-tag containers (io/readings_io.h, runtime/batch_cleaner.h)
/// key their per-object streams by TagId.
using TagId = std::int64_t;

/// The set of readers that simultaneously detected a tag, kept sorted and
/// deduplicated (see NormalizeReaderSet). The empty set is a valid reading:
/// "detected by no reader" (false negatives, reader-free zones).
using ReaderSet = std::vector<ReaderId>;

/// Sorts and deduplicates `readers` in place.
void NormalizeReaderSet(ReaderSet* readers);

/// Hash functor for normalized reader sets (cache keys in AprioriModel).
struct ReaderSetHash {
  std::size_t operator()(const ReaderSet& readers) const;
};

/// One raw observation θ = (τ, R): at time τ the monitored object was
/// detected by all and only the readers in R (§2).
struct Reading {
  Timestamp time = 0;
  ReaderSet readers;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_MODEL_READING_H_
