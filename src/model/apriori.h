#ifndef RFIDCLEAN_MODEL_APRIORI_H_
#define RFIDCLEAN_MODEL_APRIORI_H_

#include <unordered_map>
#include <vector>

#include "map/building.h"
#include "map/building_grid.h"
#include "model/reading.h"
#include "rfid/coverage_matrix.h"

namespace rfidclean {

/// The a-priori probability distribution p*(l | R) of §6.2, computed from a
/// (calibrated) detection-rate matrix F:
///
///   p*(l | R) = 1 / |L|                                       if no cell c
///               has Π_{r∈R} F[r,c] > 0 (no a-priori knowledge),
///   p*(l | R) = Σ_{c∈Cells(l)} Π_{r∈R} F[r,c]
///               / Σ_{c∈Cells(L)} Π_{r∈R} F[r,c]               otherwise,
///
/// where Cells(l) are the grid cells owned by location l and Cells(L) those
/// owned by any location (door-gap cells, which belong to no location, are
/// excluded from the denominator so that p*(· | R) is a proper distribution
/// over L). For R = ∅ the products are 1 and the second branch yields the
/// area-proportional distribution, as in the paper.
///
/// Distributions are memoized per reader set: a monitoring system observes
/// few distinct reader sets compared to the number of readings.
class AprioriModel {
 public:
  /// `calibrated` must have one column per cell of `grid`. Both referenced
  /// objects must outlive the model.
  AprioriModel(const Building& building, const BuildingGrid& grid,
               const CoverageMatrix& calibrated);

  std::size_t NumLocations() const { return building_->NumLocations(); }

  /// p*(· | readers) over all locations (indexed by LocationId, sums to 1).
  /// `readers` must be normalized. The reference is valid until the next
  /// call that inserts a new set (copy if retaining).
  const std::vector<double>& Distribution(const ReaderSet& readers) const;

  /// p*(l | readers).
  double Probability(LocationId location, const ReaderSet& readers) const;

  /// Number of memoized reader sets (diagnostics).
  std::size_t CacheSize() const { return cache_.size(); }

 private:
  std::vector<double> ComputeDistribution(const ReaderSet& readers) const;

  const Building* building_;
  const BuildingGrid* grid_;
  const CoverageMatrix* coverage_;
  mutable std::unordered_map<ReaderSet, std::vector<double>, ReaderSetHash>
      cache_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_MODEL_APRIORI_H_
