#include "model/rsequence.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace rfidclean {

Result<RSequence> RSequence::Create(std::vector<Reading> readings) {
  if (readings.empty()) {
    return InvalidArgumentError("reading sequence must not be empty");
  }
  const Timestamp n = static_cast<Timestamp>(readings.size());
  RSequence sequence;
  sequence.readers_.resize(static_cast<std::size_t>(n));
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (Reading& reading : readings) {
    if (reading.time < 0 || reading.time >= n) {
      return InvalidArgumentError(StrFormat(
          "reading timestamp %d outside [0, %d)", reading.time, n));
    }
    std::size_t index = static_cast<std::size_t>(reading.time);
    if (seen[index]) {
      return InvalidArgumentError(
          StrFormat("duplicate reading at timestamp %d", reading.time));
    }
    seen[index] = true;
    NormalizeReaderSet(&reading.readers);
    sequence.readers_[index] = std::move(reading.readers);
  }
  return sequence;
}

RSequence RSequence::Empty(Timestamp length) {
  RFID_CHECK_GT(length, 0);
  RSequence sequence;
  sequence.readers_.resize(static_cast<std::size_t>(length));
  return sequence;
}

const ReaderSet& RSequence::ReadersAt(Timestamp t) const {
  RFID_CHECK_GE(t, 0);
  RFID_CHECK_LT(t, length());
  return readers_[static_cast<std::size_t>(t)];
}

}  // namespace rfidclean
