#include "model/lsequence.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/float_eq.h"
#include "common/fnv.h"
#include "common/strings.h"

namespace rfidclean {

Result<LSequence> LSequence::Create(
    std::vector<std::vector<Candidate>> candidates) {
  if (candidates.empty()) {
    return InvalidArgumentError("l-sequence must not be empty");
  }
  for (std::size_t t = 0; t < candidates.size(); ++t) {
    std::vector<Candidate>& at_t = candidates[t];
    if (at_t.empty()) {
      return InvalidArgumentError(
          StrFormat("no candidate location at timestamp %zu", t));
    }
    double sum = 0.0;
    for (const Candidate& candidate : at_t) {
      if (candidate.location < 0) {
        return InvalidArgumentError(
            StrFormat("invalid location id at timestamp %zu", t));
      }
      if (candidate.probability <= 0.0) {
        return InvalidArgumentError(StrFormat(
            "non-positive candidate probability at timestamp %zu", t));
      }
      sum += candidate.probability;
    }
    if (!ApproxOne(sum, kInputProbabilityEpsilon)) {
      return InvalidArgumentError(StrFormat(
          "candidate probabilities at timestamp %zu sum to %f, not 1", t,
          sum));
    }
    for (std::size_t i = 0; i < at_t.size(); ++i) {
      for (std::size_t j = i + 1; j < at_t.size(); ++j) {
        if (at_t[i].location == at_t[j].location) {
          return InvalidArgumentError(StrFormat(
              "duplicate candidate location at timestamp %zu", t));
        }
      }
    }
    for (Candidate& candidate : at_t) candidate.probability /= sum;
  }
  LSequence sequence;
  sequence.candidates_ = std::move(candidates);
  return sequence;
}

LSequence LSequence::FromReadings(const RSequence& readings,
                                  const AprioriModel& apriori,
                                  double min_probability) {
  RFID_CHECK_GE(min_probability, 0.0);
  LSequence sequence;
  sequence.candidates_.resize(static_cast<std::size_t>(readings.length()));
  for (Timestamp t = 0; t < readings.length(); ++t) {
    const std::vector<double>& distribution =
        apriori.Distribution(readings.ReadersAt(t));
    std::vector<Candidate>& at_t =
        sequence.candidates_[static_cast<std::size_t>(t)];
    double kept = 0.0;
    for (std::size_t l = 0; l < distribution.size(); ++l) {
      if (distribution[l] > 0.0 && distribution[l] >= min_probability) {
        at_t.push_back(
            Candidate{static_cast<LocationId>(l), distribution[l]});
        kept += distribution[l];
      }
    }
    if (at_t.empty()) {
      // Every candidate fell below the pruning threshold; keep the single
      // most probable location so the sequence stays well formed.
      std::size_t best = 0;
      for (std::size_t l = 1; l < distribution.size(); ++l) {
        if (distribution[l] > distribution[best]) best = l;
      }
      at_t.push_back(Candidate{static_cast<LocationId>(best), 1.0});
      kept = 1.0;
    }
    for (Candidate& candidate : at_t) candidate.probability /= kept;
  }
  return sequence;
}

const std::vector<Candidate>& LSequence::CandidatesAt(Timestamp t) const {
  RFID_CHECK_GE(t, 0);
  RFID_CHECK_LT(t, length());
  return candidates_[static_cast<std::size_t>(t)];
}

double LSequence::ProbabilityAt(Timestamp t, LocationId location) const {
  for (const Candidate& candidate : CandidatesAt(t)) {
    if (candidate.location == location) return candidate.probability;
  }
  return 0.0;
}

double LSequence::NumTrajectories() const {
  double count = 1.0;
  for (const auto& at_t : candidates_) {
    count *= static_cast<double>(at_t.size());
  }
  return count;
}

std::uint64_t LSequence::Digest() const {
  Fnv64 fnv;
  fnv.MixU64(static_cast<std::uint64_t>(candidates_.size()));
  for (const auto& at_t : candidates_) {
    fnv.MixU64(static_cast<std::uint64_t>(at_t.size()));
    for (const Candidate& candidate : at_t) {
      fnv.MixI64(candidate.location);
      fnv.MixDouble(candidate.probability);
    }
  }
  return fnv.Digest();
}

}  // namespace rfidclean
