#ifndef RFIDCLEAN_MODEL_GROUP_H_
#define RFIDCLEAN_MODEL_GROUP_H_

#include <vector>

#include "common/result.h"
#include "model/apriori.h"
#include "model/lsequence.h"
#include "model/rsequence.h"

namespace rfidclean {

/// Group-movement correlation (the paper's §8 future work, motivated by
/// supply-chain scenarios): when several tagged objects are known to move
/// together — boxes on a pallet, a guided tour group — they share one
/// trajectory, and their readings are independent evidence about it. The
/// combined candidate distribution at each time point is therefore the
/// normalized product of the per-object a-priori distributions:
///
///   p_group(l | R_1, ..., R_k)  ∝  Π_o p*(l | R_o)
///
/// which typically sharpens the interpretation dramatically before the
/// ct-graph conditioning even starts (one object missed by all readers is
/// covered by its group mates).
///
/// When the product vanishes everywhere at some time point — the readings
/// genuinely conflict, e.g. two objects firmly detected on different floors
/// — the group assumption is violated there; we fall back to the normalized
/// *mixture* (average) of the per-object distributions at that time point,
/// which keeps every individually-plausible location alive. The fallback
/// count is reported so callers can flag suspect groups.
struct GroupCombineStats {
  /// Time points where the product vanished and the mixture fallback ran.
  int conflict_ticks = 0;
};

/// Combines the reading sequences of a group into the l-sequence of their
/// shared trajectory. All sequences must be non-empty and equally long.
Result<LSequence> CombineGroupReadings(
    const std::vector<const RSequence*>& group, const AprioriModel& apriori,
    GroupCombineStats* stats = nullptr);

}  // namespace rfidclean

#endif  // RFIDCLEAN_MODEL_GROUP_H_
