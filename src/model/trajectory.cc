#include "model/trajectory.h"

#include "common/check.h"

namespace rfidclean {

LocationId Trajectory::At(Timestamp t) const {
  RFID_CHECK_GE(t, 0);
  RFID_CHECK_LT(t, length());
  return steps_[static_cast<std::size_t>(t)];
}

double Trajectory::AprioriProbability(const LSequence& sequence) const {
  RFID_CHECK_EQ(sequence.length(), length());
  double probability = 1.0;
  for (Timestamp t = 0; t < length(); ++t) {
    probability *= sequence.ProbabilityAt(t, At(t));
    if (probability == 0.0) break;
  }
  return probability;
}

}  // namespace rfidclean
