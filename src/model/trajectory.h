#ifndef RFIDCLEAN_MODEL_TRAJECTORY_H_
#define RFIDCLEAN_MODEL_TRAJECTORY_H_

#include <vector>

#include "map/location.h"
#include "model/lsequence.h"
#include "model/reading.h"

namespace rfidclean {

/// A discrete trajectory over T = [0, length): one location per time point
/// (Definition 1). Used both for interpretations of an l-sequence and for
/// the ground truth produced by the synthetic generator.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(std::vector<LocationId> steps)
      : steps_(std::move(steps)) {}

  Timestamp length() const { return static_cast<Timestamp>(steps_.size()); }
  bool empty() const { return steps_.empty(); }

  LocationId At(Timestamp t) const;
  void Append(LocationId location) { steps_.push_back(location); }

  const std::vector<LocationId>& steps() const { return steps_; }

  /// A-priori probability p*(t) w.r.t. `sequence`: the product of the
  /// candidate probabilities of its steps (0 when a step is not a candidate).
  /// Requires matching lengths.
  double AprioriProbability(const LSequence& sequence) const;

  friend bool operator==(const Trajectory& a, const Trajectory& b) {
    return a.steps_ == b.steps_;
  }

 private:
  std::vector<LocationId> steps_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_MODEL_TRAJECTORY_H_
