#include "model/reading.h"

#include <algorithm>

namespace rfidclean {

void NormalizeReaderSet(ReaderSet* readers) {
  std::sort(readers->begin(), readers->end());
  readers->erase(std::unique(readers->begin(), readers->end()),
                 readers->end());
}

std::size_t ReaderSetHash::operator()(const ReaderSet& readers) const {
  // FNV-1a over the id stream.
  std::size_t hash = 1469598103934665603ULL;
  for (ReaderId id : readers) {
    hash ^= static_cast<std::size_t>(id) + 0x9e3779b97f4a7c15ULL;
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace rfidclean
