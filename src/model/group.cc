#include "model/group.h"

#include <algorithm>

#include "common/strings.h"

namespace rfidclean {

Result<LSequence> CombineGroupReadings(
    const std::vector<const RSequence*>& group, const AprioriModel& apriori,
    GroupCombineStats* stats) {
  if (group.empty()) {
    return InvalidArgumentError("group must contain at least one object");
  }
  const Timestamp length = group[0]->length();
  for (std::size_t o = 1; o < group.size(); ++o) {
    if (group[o]->length() != length) {
      return InvalidArgumentError(StrFormat(
          "group member %zu covers %d ticks, expected %d", o,
          group[o]->length(), length));
    }
  }
  if (stats != nullptr) *stats = GroupCombineStats{};

  const std::size_t num_locations = apriori.NumLocations();
  std::vector<std::vector<Candidate>> combined(
      static_cast<std::size_t>(length));
  std::vector<double> product(num_locations);
  std::vector<double> mixture(num_locations);
  for (Timestamp t = 0; t < length; ++t) {
    std::fill(product.begin(), product.end(), 1.0);
    std::fill(mixture.begin(), mixture.end(), 0.0);
    for (const RSequence* readings : group) {
      const std::vector<double>& distribution =
          apriori.Distribution(readings->ReadersAt(t));
      for (std::size_t l = 0; l < num_locations; ++l) {
        product[l] *= distribution[l];
        mixture[l] += distribution[l];
      }
    }
    double product_mass = 0.0;
    for (double p : product) product_mass += p;
    const std::vector<double>& chosen =
        product_mass > 0.0 ? product : mixture;
    if (product_mass <= 0.0 && stats != nullptr) ++stats->conflict_ticks;
    double mass = 0.0;
    for (double p : chosen) mass += p;
    std::vector<Candidate>& at_t = combined[static_cast<std::size_t>(t)];
    for (std::size_t l = 0; l < num_locations; ++l) {
      if (chosen[l] > 0.0) {
        at_t.push_back(
            Candidate{static_cast<LocationId>(l), chosen[l] / mass});
      }
    }
  }
  return LSequence::Create(std::move(combined));
}

}  // namespace rfidclean
