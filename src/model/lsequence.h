#ifndef RFIDCLEAN_MODEL_LSEQUENCE_H_
#define RFIDCLEAN_MODEL_LSEQUENCE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "map/location.h"
#include "model/apriori.h"
#include "model/reading.h"
#include "model/rsequence.h"

namespace rfidclean {

/// One alternative (location, probability) pair λ at a fixed time point.
struct Candidate {
  LocationId location = kInvalidLocation;
  double probability = 0.0;
};

/// The probabilistic location sequence Γ = (Λ, p) of §2: for every time
/// point of T, the locations compatible with the reading at that time, each
/// with its a-priori probability (p sums to 1 per time point, zero-probability
/// pairs are never materialized).
class LSequence {
 public:
  /// An empty sequence (length 0); useful only as an assignment target.
  LSequence() = default;

  /// Validates the candidate lists: non-empty per time point, strictly
  /// positive probabilities summing to 1 (within 1e-6; they are then
  /// renormalized exactly), no duplicate locations.
  static Result<LSequence> Create(
      std::vector<std::vector<Candidate>> candidates);

  /// Interprets a reading sequence through the a-priori model (the paper's
  /// Γ corresponding to Θ according to p*(l|R)). Candidates with probability
  /// below `min_probability` are pruned and the remainder renormalized;
  /// the default 0 keeps every non-zero candidate, exactly as in the paper.
  static LSequence FromReadings(const RSequence& readings,
                                const AprioriModel& apriori,
                                double min_probability = 0.0);

  Timestamp length() const {
    return static_cast<Timestamp>(candidates_.size());
  }

  const std::vector<Candidate>& CandidatesAt(Timestamp t) const;

  /// Probability of (t, location), or 0 when the pair is not in Λ.
  double ProbabilityAt(Timestamp t, LocationId location) const;

  /// Number of trajectories over Γ: Π_t |candidates at t| (§2), as a double
  /// since it overflows integers immediately.
  double NumTrajectories() const;

  /// Stable FNV-1a content digest (per-tick candidate lists: locations and
  /// probability bit patterns). Equal sequences digest equally across runs
  /// and platforms; used as the input digest in trace provenance.
  std::uint64_t Digest() const;

 private:
  std::vector<std::vector<Candidate>> candidates_;  // indexed by timestamp
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_MODEL_LSEQUENCE_H_
