#ifndef RFIDCLEAN_MODEL_RSEQUENCE_H_
#define RFIDCLEAN_MODEL_RSEQUENCE_H_

#include <vector>

#include "common/result.h"
#include "model/reading.h"

namespace rfidclean {

/// A reading sequence Θ over T = [0, length): exactly one reading per time
/// point (§2). Reader sets are normalized on construction.
class RSequence {
 public:
  /// An empty sequence (length 0); useful only as an assignment target.
  RSequence() = default;

  /// Validates that `readings` covers 0..n-1 exactly once, in any order.
  static Result<RSequence> Create(std::vector<Reading> readings);

  /// Builds a sequence of `length` empty readings (no detections).
  static RSequence Empty(Timestamp length);

  Timestamp length() const { return static_cast<Timestamp>(readers_.size()); }

  /// Reader set observed at time `t`.
  const ReaderSet& ReadersAt(Timestamp t) const;

 private:
  std::vector<ReaderSet> readers_;  // indexed by timestamp
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_MODEL_RSEQUENCE_H_
