#include "model/apriori.h"

#include "common/check.h"

namespace rfidclean {

AprioriModel::AprioriModel(const Building& building, const BuildingGrid& grid,
                           const CoverageMatrix& calibrated)
    : building_(&building), grid_(&grid), coverage_(&calibrated) {
  RFID_CHECK_EQ(calibrated.num_cells(), grid.NumCells());
}

const std::vector<double>& AprioriModel::Distribution(
    const ReaderSet& readers) const {
  auto it = cache_.find(readers);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(readers, ComputeDistribution(readers)).first->second;
}

double AprioriModel::Probability(LocationId location,
                                 const ReaderSet& readers) const {
  RFID_CHECK_GE(location, 0);
  RFID_CHECK_LT(static_cast<std::size_t>(location), NumLocations());
  return Distribution(readers)[static_cast<std::size_t>(location)];
}

std::vector<double> AprioriModel::ComputeDistribution(
    const ReaderSet& readers) const {
  const std::size_t num_locations = NumLocations();
  std::vector<double> distribution(num_locations, 0.0);
  double total = 0.0;
  for (std::size_t l = 0; l < num_locations; ++l) {
    double sum = 0.0;
    for (int cell : grid_->CellsOfLocation(static_cast<LocationId>(l))) {
      double weight = 1.0;
      for (ReaderId r : readers) {
        weight *= coverage_->Probability(r, cell);
        if (weight == 0.0) break;
      }
      sum += weight;
    }
    distribution[l] = sum;
    total += sum;
  }
  if (total <= 0.0) {
    // No cell is compatible with this reader set: no a-priori knowledge,
    // fall back to the uniform distribution over L (§6.2).
    double uniform = 1.0 / static_cast<double>(num_locations);
    for (double& p : distribution) p = uniform;
    return distribution;
  }
  for (double& p : distribution) p /= total;
  return distribution;
}

}  // namespace rfidclean
