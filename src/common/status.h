#ifndef RFIDCLEAN_COMMON_STATUS_H_
#define RFIDCLEAN_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

/// \file
/// Error propagation without exceptions, modeled after absl::Status.
/// Library entry points that can fail on user input return `Status` (or
/// `Result<T>`, see result.h); programmer errors use RFID_CHECK instead.

namespace rfidclean {

/// Coarse error categories; fine detail lives in the message.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

/// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an (code, message) error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Shorthand error constructors.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);

}  // namespace rfidclean

/// Propagates a non-OK status to the caller.
#define RFID_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::rfidclean::Status rfid_status_ = (expr);     \
    if (!rfid_status_.ok()) return rfid_status_;   \
  } while (false)

#endif  // RFIDCLEAN_COMMON_STATUS_H_
