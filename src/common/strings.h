#ifndef RFIDCLEAN_COMMON_STRINGS_H_
#define RFIDCLEAN_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace rfidclean {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a byte count as "640.0 KiB", "25.1 MiB", ...
std::string HumanBytes(std::size_t bytes);

}  // namespace rfidclean

#endif  // RFIDCLEAN_COMMON_STRINGS_H_
