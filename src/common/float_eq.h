#ifndef RFIDCLEAN_COMMON_FLOAT_EQ_H_
#define RFIDCLEAN_COMMON_FLOAT_EQ_H_

/// \file
/// Epsilon comparisons for probabilities and masses. Exact `==` on a
/// *computed* probability is a bug waiting for a rounding change; use
/// these helpers (or an explicit tolerance) instead. Exact comparisons
/// remain correct for short-circuits on structural zeros — a product that
/// multiplied an exact 0.0 stays exactly 0.0 — and such sites should keep
/// `== 0.0` deliberately.

namespace rfidclean {

/// Absolute tolerance used for "this mass should be 0/1" checks across the
/// library (ct-graph consistency, audits, tests). Matches the historical
/// CtGraph::CheckConsistency default.
inline constexpr double kProbabilityEpsilon = 1e-9;

/// Looser tolerance for *user-supplied* distributions (candidate lists
/// parsed from files), which may come from lower-precision producers.
inline constexpr double kInputProbabilityEpsilon = 1e-6;

/// |a - b| <= epsilon, without calling into <cmath>; false for NaN.
constexpr bool ApproxEqual(double a, double b,
                           double epsilon = kProbabilityEpsilon) {
  const double diff = a >= b ? a - b : b - a;
  return diff <= epsilon;
}

/// |x| <= epsilon; false for NaN.
constexpr bool ApproxZero(double x, double epsilon = kProbabilityEpsilon) {
  return ApproxEqual(x, 0.0, epsilon);
}

/// |x - 1| <= epsilon; false for NaN. The canonical "is this normalized"
/// test.
constexpr bool ApproxOne(double x, double epsilon = kProbabilityEpsilon) {
  return ApproxEqual(x, 1.0, epsilon);
}

}  // namespace rfidclean

#endif  // RFIDCLEAN_COMMON_FLOAT_EQ_H_
