#ifndef RFIDCLEAN_COMMON_CHECK_H_
#define RFIDCLEAN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Fatal assertion macros for programmer errors (contract violations).
/// These are always on, including in release builds: the library is used to
/// produce published experimental numbers, and silently continuing past a
/// broken invariant would corrupt them.

namespace rfidclean::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace rfidclean::internal_check

/// Aborts the process if `expr` is false.
#define RFID_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::rfidclean::internal_check::CheckFailed(__FILE__, __LINE__,      \
                                               #expr);                  \
    }                                                                   \
  } while (false)

/// Convenience comparison forms; evaluate operands exactly once.
#define RFID_CHECK_OP(op, a, b)                   \
  do {                                            \
    const auto& rfid_check_a_ = (a);              \
    const auto& rfid_check_b_ = (b);              \
    if (!(rfid_check_a_ op rfid_check_b_)) {      \
      ::rfidclean::internal_check::CheckFailed(   \
          __FILE__, __LINE__, #a " " #op " " #b); \
    }                                             \
  } while (false)

#define RFID_CHECK_EQ(a, b) RFID_CHECK_OP(==, a, b)
#define RFID_CHECK_NE(a, b) RFID_CHECK_OP(!=, a, b)
#define RFID_CHECK_LT(a, b) RFID_CHECK_OP(<, a, b)
#define RFID_CHECK_LE(a, b) RFID_CHECK_OP(<=, a, b)
#define RFID_CHECK_GT(a, b) RFID_CHECK_OP(>, a, b)
#define RFID_CHECK_GE(a, b) RFID_CHECK_OP(>=, a, b)

#endif  // RFIDCLEAN_COMMON_CHECK_H_
