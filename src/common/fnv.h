#ifndef RFIDCLEAN_COMMON_FNV_H_
#define RFIDCLEAN_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

/// \file
/// 64-bit FNV-1a hashing, the project's standard content digest (bench
/// result digests, trace provenance). Stable across platforms and runs —
/// no seeding, no pointer hashing; callers feed explicit bytes or values.

namespace rfidclean {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Incremental FNV-1a digest.
class Fnv64 {
 public:
  void Mix(const void* data, std::size_t size) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= kFnvPrime;
    }
  }

  void MixU64(std::uint64_t value) { Mix(&value, sizeof(value)); }

  void MixI64(std::int64_t value) {
    MixU64(static_cast<std::uint64_t>(value));
  }

  /// Mixes the IEEE-754 bit pattern, so digests are exact (no epsilon).
  void MixDouble(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    MixU64(bits);
  }

  std::uint64_t Digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffsetBasis;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_COMMON_FNV_H_
