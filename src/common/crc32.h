#ifndef RFIDCLEAN_COMMON_CRC32_H_
#define RFIDCLEAN_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

/// \file
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the integrity
/// checksum of the binary ct-store sections (docs/FORMATS.md). Unlike the
/// FNV digests (common/fnv.h), which identify *content* across runs, CRC-32
/// here guards *bytes at rest*: every on-disk section carries one so a
/// flipped bit is a loud decode error instead of a silently wrong
/// probability.

namespace rfidclean {

/// CRC-32 of `size` bytes at `data`. `seed` chains partial computations:
/// Crc32(b, n) == Crc32(b + k, n - k, Crc32(b, k)) for any split k.
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace rfidclean

#endif  // RFIDCLEAN_COMMON_CRC32_H_
