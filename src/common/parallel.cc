#include "common/parallel.h"

#include <algorithm>

namespace rfidclean {

ThreadPool::ThreadPool(int lanes) {
  const int workers = lanes > 1 ? lanes - 1 : 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, int)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  if (workers_.empty() || n <= chunk) {
    fn(0, n, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_n_ = n;
    job_chunk_ = chunk;
    cursor_.store(0, std::memory_order_relaxed);
    active_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  DrainChunks(0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(int lane) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    DrainChunks(lane);
    std::lock_guard<std::mutex> lock(mutex_);
    if (--active_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::DrainChunks(int lane) {
  const std::function<void(std::size_t, std::size_t, int)>& fn = *job_;
  const std::size_t n = job_n_;
  const std::size_t chunk = job_chunk_;
  while (true) {
    const std::size_t begin =
        cursor_.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= n) return;
    fn(begin, std::min(begin + chunk, n), lane);
  }
}

}  // namespace rfidclean
