#ifndef RFIDCLEAN_COMMON_SMALL_VECTOR_H_
#define RFIDCLEAN_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace rfidclean {

/// A vector with inline storage for up to `N` elements, spilling to the heap
/// beyond that. Used for the per-node "recent departures" lists (TL) of
/// ct-graph nodes, which are almost always tiny: keeping them inline is what
/// makes the §6.7 memory-footprint experiment faithful.
///
/// Restricted to trivially copyable `T` — sufficient for our use and keeps
/// the implementation simple and exception-free.
template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector requires trivially copyable elements");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }
  SmallVector(const SmallVector& other) { CopyFrom(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      CopyFrom(other);
    }
    return *this;
  }
  SmallVector(SmallVector&& other) noexcept
      : inline_(other.inline_),
        heap_(std::move(other.heap_)),
        size_(other.size_) {
    other.size_ = 0;
    other.heap_.clear();
  }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      inline_ = other.inline_;
      heap_ = std::move(other.heap_);
      size_ = other.size_;
      other.size_ = 0;
      other.heap_.clear();
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(const T& v) {
    if (size_ < N) {
      inline_[size_] = v;
    } else {
      heap_.push_back(v);
    }
    ++size_;
  }

  void pop_back() {
    RFID_CHECK_GT(size_, 0u);
    --size_;
    if (size_ >= N) heap_.pop_back();
  }

  void clear() {
    size_ = 0;
    heap_.clear();
  }

  T& operator[](std::size_t i) {
    RFID_CHECK_LT(i, size_);
    return i < N ? inline_[i] : heap_[i - N];
  }
  const T& operator[](std::size_t i) const {
    RFID_CHECK_LT(i, size_);
    return i < N ? inline_[i] : heap_[i - N];
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  /// Iteration. Elements spilled to the heap are not contiguous with the
  /// inline ones, so iterators are only valid when size() <= N; for larger
  /// vectors use index-based access or ForEach.
  iterator begin() {
    RFID_CHECK_LE(size_, N);
    return inline_.data();
  }
  iterator end() {
    RFID_CHECK_LE(size_, N);
    return inline_.data() + size_;
  }
  const_iterator begin() const {
    RFID_CHECK_LE(size_, N);
    return inline_.data();
  }
  const_iterator end() const {
    RFID_CHECK_LE(size_, N);
    return inline_.data() + size_;
  }

  /// Applies `fn(const T&)` to every element, regardless of storage.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) fn((*this)[i]);
  }

  /// Bytes of heap memory owned by this vector (0 while inline).
  std::size_t HeapBytes() const { return heap_.capacity() * sizeof(T); }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  void CopyFrom(const SmallVector& other) {
    for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
  }

  std::array<T, N> inline_{};
  std::vector<T> heap_;
  std::size_t size_ = 0;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_COMMON_SMALL_VECTOR_H_
