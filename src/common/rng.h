#ifndef RFIDCLEAN_COMMON_RNG_H_
#define RFIDCLEAN_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace rfidclean {

/// Deterministic, seedable pseudo-random generator (PCG32, O'Neill 2014).
/// All stochastic components of the library (reader detection, calibration,
/// trajectory generation, query workloads) draw from explicitly passed Rng
/// instances so every experiment is reproducible from its seed.
class Rng {
 public:
  /// Seeds the generator. Distinct `stream` values yield independent
  /// sequences even under the same `seed`.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t NextUint32();

  /// Uniform in [0, bound) without modulo bias. Requires bound > 0.
  std::uint32_t UniformUint32(std::uint32_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Uniformly picks an index into a non-empty container of size `n`.
  std::size_t UniformIndex(std::size_t n);

  /// Samples an index with probability proportional to `weights[i]`.
  /// Requires at least one strictly positive weight.
  std::size_t WeightedIndex(const std::vector<double>& weights);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_COMMON_RNG_H_
