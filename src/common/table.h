#ifndef RFIDCLEAN_COMMON_TABLE_H_
#define RFIDCLEAN_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace rfidclean {

/// Minimal column-aligned text table used by the benchmark harness to print
/// paper-shaped result rows, with optional CSV export for plotting.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  void Print(std::ostream& os) const;

  /// Renders the table as CSV (no quoting: cells must not contain commas).
  void PrintCsv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_COMMON_TABLE_H_
