#ifndef RFIDCLEAN_COMMON_STOPWATCH_H_
#define RFIDCLEAN_COMMON_STOPWATCH_H_

#include <chrono>

namespace rfidclean {

/// Monotonic wall-clock stopwatch for the experiment harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_COMMON_STOPWATCH_H_
