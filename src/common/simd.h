#ifndef RFIDCLEAN_COMMON_SIMD_H_
#define RFIDCLEAN_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

/// \file
/// Runtime-dispatched SIMD kernels for the probability hot path.
///
/// Every kernel has one *numerical contract*, stated below, that the scalar
/// and the AVX2 implementations both satisfy bit-for-bit — so the emitted
/// ct-graph is byte-identical whether a build runs the vector unit, the
/// scalar fallback (old CPU, or ForceScalarForTesting), or a binary
/// configured with -DRFIDCLEAN_SIMD=OFF. The differential suite and a CI
/// job enforce this exactly like the trace-off digest gate.
///
/// Reduction contract (docs/ALGORITHM.md §13): sums use a fixed 4-lane
/// blocked reduction. Lane j accumulates the elements with index ≡ j
/// (mod 4) in ascending order, and the lanes combine as
/// (l0 + l1) + (l2 + l3). That is exactly one 4-wide vector accumulator
/// with a lane-aligned tail, so the vector loop reproduces the scalar
/// reference without reassociation. Elementwise kernels (multiply, divide)
/// are single IEEE-754 operations per element and carry no ordering at all.
/// Kernel translation units compile with -ffp-contract=off so no
/// fused-multiply-add can sneak a differently-rounded product in.
///
/// Configure with -DRFIDCLEAN_SIMD=OFF to exclude the vector translation
/// unit entirely (the build defines RFIDCLEAN_SIMD_OFF); the binary then
/// contains zero vector-kernel symbols, which CI checks with `nm`.

#if defined(RFIDCLEAN_SIMD_OFF) || !defined(__x86_64__)
#define RFIDCLEAN_SIMD_ENABLED 0
#else
#define RFIDCLEAN_SIMD_ENABLED 1
#endif

namespace rfidclean::simd {

namespace internal {
#if RFIDCLEAN_SIMD_ENABLED
/// Whether the running CPU offers the vector unit (detected once at load).
extern const bool g_cpu_vector_ok;
/// Test hook: forces every dispatched kernel onto the scalar path.
extern bool g_force_scalar;
#endif
}  // namespace internal

/// Whether this build compiled the vector kernels in (compile-time).
constexpr bool CompiledIn() { return RFIDCLEAN_SIMD_ENABLED != 0; }

/// Whether dispatched kernels currently take the vector path: compiled in,
/// supported by the running CPU, and not forced scalar by a test.
inline bool VectorKernelsActive() {
#if RFIDCLEAN_SIMD_ENABLED
  return internal::g_cpu_vector_ok && !internal::g_force_scalar;
#else
  return false;
#endif
}

/// Routes every dispatched kernel through the scalar reference while
/// `force` is true. Results are bit-identical either way — that is the
/// point: tests flip this to prove it. No-op in SIMD-off builds.
void ForceScalarForTesting(bool force);

/// The canonical blocked reduction (see the file comment). Inline scalar —
/// per-node sums in the backward sweep average ~2 elements, far below any
/// dispatch overhead — and the reference the vector BlockedSum must match.
/// n == 0 returns exactly +0.0.
inline double BlockedSum4(const double* x, std::size_t n) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) lanes[i & 3] += x[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/// Zero-skipping blocked reduction for per-node suffix masses: every term
/// is added to the current lane, but only *nonzero* terms advance the lane
/// cursor. Adding +0.0 to a lane is the identity, so the sum is invariant
/// under inserting exact-zero terms at any position — the property that
/// keeps preflight-pruned and unpruned builds byte-identical (a statically
/// dead edge contributes exactly p·0.0; ALGORITHM.md §11), which a purely
/// positional lane assignment would lose. Terms must be non-negative
/// (probability × mass products always are), so no lane ever holds -0.0.
inline double BlockedSumSkipZero4(const double* x, std::size_t n) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t lane = 0;
  for (std::size_t i = 0; i < n; ++i) {
    lanes[lane & 3] += x[i];
    lane += static_cast<std::size_t>(x[i] != 0.0);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/// Dispatched BlockedSum4 for long arrays (layer-wide alpha totals).
double BlockedSum(const double* x, std::size_t n);

/// x[i] /= divisor for i in [0, n). Elementwise IEEE division.
void DivideInPlace(double* x, std::size_t n, double divisor);

/// out[k] = values[k·value_stride] · table[indices[k·index_stride] ·
/// table_stride] for k in [0, n) — the backward sweep's per-edge
/// p(k)·S(k) products over a CSR slab, with the strides expressing the
/// WorkEdge / WorkNode record layouts. Elementwise IEEE multiplication.
///
/// The vector path computes indices[·]·table_stride in 32-bit lanes, so
/// the caller must guarantee max_index · table_stride ≤ INT32_MAX (the
/// sweep checks node count against that bound and falls back to its own
/// scalar loop otherwise).
void GatherProducts(const double* values, std::size_t value_stride,
                    const std::int32_t* indices, std::size_t index_stride,
                    const double* table, std::size_t table_stride,
                    std::size_t n, double* out);

/// Slots inspected at once by ScanProbeGroup.
inline constexpr std::size_t kProbeGroupWidth = 8;

/// One batched step of the key arena's linear probe: inspects the
/// kProbeGroupWidth consecutive open-addressing slots at `slots` (id per
/// slot, -1 = empty) and reports, as bitmasks over the group offsets,
/// which slots are empty and which hold an id whose cached hash
/// (`hashes[id]`) equals `target_hash`. The caller walks the combined
/// candidates in ascending offset, preserving the scalar probe's
/// first-empty / first-match semantics and its position-based step count
/// exactly. Purely integer control flow — no effect on any emitted float.
struct ProbeGroupMasks {
  std::uint32_t empty = 0;
  std::uint32_t match = 0;
};
ProbeGroupMasks ScanProbeGroup(const std::int32_t* slots,
                               const std::size_t* hashes,
                               std::size_t target_hash);

namespace internal {

double BlockedSumScalar(const double* x, std::size_t n);
void DivideInPlaceScalar(double* x, std::size_t n, double divisor);
void GatherProductsScalar(const double* values, std::size_t value_stride,
                          const std::int32_t* indices,
                          std::size_t index_stride, const double* table,
                          std::size_t table_stride, std::size_t n,
                          double* out);
ProbeGroupMasks ScanProbeGroupScalar(const std::int32_t* slots,
                                     const std::size_t* hashes,
                                     std::size_t target_hash);

#if RFIDCLEAN_SIMD_ENABLED
// Implemented in simd_avx2.cc (the only translation unit built with
// -mavx2); absent from SIMD-off binaries, which CI verifies with nm.
double BlockedSumAvx2(const double* x, std::size_t n);
void DivideInPlaceAvx2(double* x, std::size_t n, double divisor);
void GatherProductsAvx2(const double* values, std::size_t value_stride,
                        const std::int32_t* indices, std::size_t index_stride,
                        const double* table, std::size_t table_stride,
                        std::size_t n, double* out);
ProbeGroupMasks ScanProbeGroupAvx2(const std::int32_t* slots,
                                   const std::size_t* hashes,
                                   std::size_t target_hash);
#endif

}  // namespace internal

}  // namespace rfidclean::simd

#endif  // RFIDCLEAN_COMMON_SIMD_H_
