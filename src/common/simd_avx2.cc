// The one translation unit built with -mavx2 (and -ffp-contract=off; see
// src/common/CMakeLists.txt). Every function here implements the numerical
// contract stated in simd.h bit-for-bit against its scalar reference: the
// blocked sums keep one 4-wide accumulator whose lanes match the scalar
// lane assignment i & 3 (the main loop ends on a multiple of 4, so tail
// element i lands in lane i & 3 exactly like the scalar loop), and the
// elementwise kernels are one IEEE multiply or divide per element with no
// contraction. Excluded entirely from -DRFIDCLEAN_SIMD=OFF builds — CI
// asserts with `nm` that no *Avx2 symbol survives there.

#include "common/simd.h"

#if RFIDCLEAN_SIMD_ENABLED

#include <immintrin.h>

namespace rfidclean::simd::internal {

static_assert(sizeof(std::size_t) == 8,
              "hash gathers assume 64-bit std::size_t");

double BlockedSumAvx2(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  for (std::size_t j = 0; i + j < n; ++j) lanes[j] += x[i + j];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void DivideInPlaceAvx2(double* x, std::size_t n, double divisor) {
  const __m256d d = _mm256_set1_pd(divisor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_div_pd(_mm256_loadu_pd(x + i), d));
  }
  for (; i < n; ++i) x[i] /= divisor;
}

void GatherProductsAvx2(const double* values, std::size_t value_stride,
                        const std::int32_t* indices, std::size_t index_stride,
                        const double* table, std::size_t table_stride,
                        std::size_t n, double* out) {
  const __m128i stride_v = _mm_set1_epi32(static_cast<int>(table_stride));
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const std::int32_t* idx = indices + k * index_stride;
    __m128i idx32 = _mm_setr_epi32(idx[0], idx[index_stride],
                                   idx[2 * index_stride],
                                   idx[3 * index_stride]);
    // 32-bit index scaling is why simd.h demands max_index · table_stride
    // ≤ INT32_MAX of callers.
    idx32 = _mm_mullo_epi32(idx32, stride_v);
    const __m256i idx64 = _mm256_cvtepi32_epi64(idx32);
    const __m256d gathered = _mm256_i64gather_pd(table, idx64, 8);
    const double* v = values + k * value_stride;
    const __m256d vv = _mm256_setr_pd(v[0], v[value_stride],
                                      v[2 * value_stride],
                                      v[3 * value_stride]);
    _mm256_storeu_pd(out + k, _mm256_mul_pd(vv, gathered));
  }
  for (; k < n; ++k) {
    out[k] =
        values[k * value_stride] *
        table[static_cast<std::size_t>(indices[k * index_stride]) *
              table_stride];
  }
}

ProbeGroupMasks ScanProbeGroupAvx2(const std::int32_t* slots,
                                   const std::size_t* hashes,
                                   std::size_t target_hash) {
  static_assert(kProbeGroupWidth == 8, "one 8-lane epi32 load per group");
  const __m256i ids =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slots));
  const __m256i minus_one = _mm256_set1_epi32(-1);
  const __m256i empty_v = _mm256_cmpeq_epi32(ids, minus_one);
  const std::uint32_t empty = static_cast<std::uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(empty_v)));

  // Gather hashes_[id] for the occupied lanes (two masked 4-wide 64-bit
  // gathers; masked-out lanes never touch memory, so the -1 ids are safe).
  const __m128i lo = _mm256_castsi256_si128(ids);
  const __m128i hi = _mm256_extracti128_si256(ids, 1);
  const __m128i m1_128 = _mm_set1_epi32(-1);
  const __m256i valid_lo =
      _mm256_cvtepi32_epi64(_mm_cmpgt_epi32(lo, m1_128));
  const __m256i valid_hi =
      _mm256_cvtepi32_epi64(_mm_cmpgt_epi32(hi, m1_128));
  const long long* base = reinterpret_cast<const long long*>(hashes);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i g_lo = _mm256_mask_i64gather_epi64(
      zero, base, _mm256_cvtepi32_epi64(lo), valid_lo, 8);
  const __m256i g_hi = _mm256_mask_i64gather_epi64(
      zero, base, _mm256_cvtepi32_epi64(hi), valid_hi, 8);
  const __m256i target =
      _mm256_set1_epi64x(static_cast<long long>(target_hash));
  const std::uint32_t match_lo = static_cast<std::uint32_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(g_lo,
                                                                target))));
  const std::uint32_t match_hi = static_cast<std::uint32_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(g_hi,
                                                                target))));
  ProbeGroupMasks masks;
  masks.empty = empty;
  // Empty lanes gathered the masked-in default 0, which would spuriously
  // "match" a zero target hash — they are not matches by definition.
  masks.match = (match_lo | (match_hi << 4)) & ~empty;
  return masks;
}

}  // namespace rfidclean::simd::internal

#endif  // RFIDCLEAN_SIMD_ENABLED
