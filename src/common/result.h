#ifndef RFIDCLEAN_COMMON_RESULT_H_
#define RFIDCLEAN_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace rfidclean {

/// Holds either a value of type `T` or a non-OK Status, modeled after
/// absl::StatusOr. Accessing the value of an error Result is a fatal
/// programmer error (RFID_CHECK).
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return my_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: `return InvalidArgumentError(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    RFID_CHECK(!status_.ok());  // OK must carry a value.
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RFID_CHECK(ok());
    return *value_;
  }
  T& value() & {
    RFID_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    RFID_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rfidclean

/// Unwraps a Result into `lhs`, propagating errors to the caller.
/// Usage: RFID_ASSIGN_OR_RETURN(auto graph, builder.Build(seq));
#define RFID_ASSIGN_OR_RETURN(lhs, expr)                   \
  RFID_ASSIGN_OR_RETURN_IMPL_(                             \
      RFID_RESULT_CONCAT_(rfid_result_, __LINE__), lhs, expr)

#define RFID_RESULT_CONCAT_INNER_(a, b) a##b
#define RFID_RESULT_CONCAT_(a, b) RFID_RESULT_CONCAT_INNER_(a, b)
#define RFID_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // RFIDCLEAN_COMMON_RESULT_H_
