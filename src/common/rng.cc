#include "common/rng.h"

#include <cstddef>

namespace rfidclean {

namespace {
constexpr std::uint64_t kPcgMultiplier = 6364136223846793005ULL;
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  NextUint32();
  state_ += seed;
  NextUint32();
}

std::uint32_t Rng::NextUint32() {
  std::uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  std::uint32_t xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Rng::UniformUint32(std::uint32_t bound) {
  RFID_CHECK_GT(bound, 0u);
  // Lemire-style rejection to remove modulo bias.
  std::uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    std::uint32_t r = NextUint32();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  RFID_CHECK_LE(lo, hi);
  std::uint32_t span = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(hi) - static_cast<std::int64_t>(lo) + 1);
  return lo + static_cast<int>(UniformUint32(span));
}

double Rng::UniformDouble() {
  return NextUint32() * (1.0 / 4294967296.0);
}

double Rng::UniformDouble(double lo, double hi) {
  RFID_CHECK_LE(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::size_t Rng::UniformIndex(std::size_t n) {
  RFID_CHECK_GT(n, 0u);
  return static_cast<std::size_t>(
      UniformUint32(static_cast<std::uint32_t>(n)));
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    RFID_CHECK_GE(w, 0.0);
    total += w;
  }
  RFID_CHECK_GT(total, 0.0);
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace rfidclean
