#include "common/simd.h"

namespace rfidclean::simd {

namespace internal {

#if RFIDCLEAN_SIMD_ENABLED
const bool g_cpu_vector_ok = __builtin_cpu_supports("avx2");
bool g_force_scalar = false;
#endif

double BlockedSumScalar(const double* x, std::size_t n) {
  return BlockedSum4(x, n);
}

void DivideInPlaceScalar(double* x, std::size_t n, double divisor) {
  for (std::size_t i = 0; i < n; ++i) x[i] /= divisor;
}

void GatherProductsScalar(const double* values, std::size_t value_stride,
                          const std::int32_t* indices,
                          std::size_t index_stride, const double* table,
                          std::size_t table_stride, std::size_t n,
                          double* out) {
  for (std::size_t k = 0; k < n; ++k) {
    out[k] =
        values[k * value_stride] *
        table[static_cast<std::size_t>(indices[k * index_stride]) *
              table_stride];
  }
}

ProbeGroupMasks ScanProbeGroupScalar(const std::int32_t* slots,
                                     const std::size_t* hashes,
                                     std::size_t target_hash) {
  ProbeGroupMasks masks;
  for (std::size_t j = 0; j < kProbeGroupWidth; ++j) {
    const std::int32_t id = slots[j];
    if (id < 0) {
      masks.empty |= 1u << j;
    } else if (hashes[static_cast<std::size_t>(id)] == target_hash) {
      masks.match |= 1u << j;
    }
  }
  return masks;
}

}  // namespace internal

void ForceScalarForTesting(bool force) {
#if RFIDCLEAN_SIMD_ENABLED
  internal::g_force_scalar = force;
#else
  (void)force;
#endif
}

double BlockedSum(const double* x, std::size_t n) {
#if RFIDCLEAN_SIMD_ENABLED
  if (VectorKernelsActive()) return internal::BlockedSumAvx2(x, n);
#endif
  return internal::BlockedSumScalar(x, n);
}

void DivideInPlace(double* x, std::size_t n, double divisor) {
#if RFIDCLEAN_SIMD_ENABLED
  if (VectorKernelsActive()) {
    internal::DivideInPlaceAvx2(x, n, divisor);
    return;
  }
#endif
  internal::DivideInPlaceScalar(x, n, divisor);
}

void GatherProducts(const double* values, std::size_t value_stride,
                    const std::int32_t* indices, std::size_t index_stride,
                    const double* table, std::size_t table_stride,
                    std::size_t n, double* out) {
#if RFIDCLEAN_SIMD_ENABLED
  if (VectorKernelsActive()) {
    internal::GatherProductsAvx2(values, value_stride, indices, index_stride,
                                 table, table_stride, n, out);
    return;
  }
#endif
  internal::GatherProductsScalar(values, value_stride, indices, index_stride,
                                 table, table_stride, n, out);
}

ProbeGroupMasks ScanProbeGroup(const std::int32_t* slots,
                               const std::size_t* hashes,
                               std::size_t target_hash) {
#if RFIDCLEAN_SIMD_ENABLED
  if (VectorKernelsActive()) {
    return internal::ScanProbeGroupAvx2(slots, hashes, target_hash);
  }
#endif
  return internal::ScanProbeGroupScalar(slots, hashes, target_hash);
}

}  // namespace rfidclean::simd
