#ifndef RFIDCLEAN_COMMON_PARALLEL_H_
#define RFIDCLEAN_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rfidclean {

/// A small persistent fork-join pool for intra-build parallelism (the
/// forward engine's layer-parallel expansion). The calling thread is lane
/// 0 and participates in every ParallelFor; with `lanes` ≤ 1 no worker
/// thread is ever created and ParallelFor degenerates to a plain loop, so
/// holding a pool is free for sequential configurations.
///
/// Work is handed out as dynamic chunks from one atomic cursor — lanes
/// that finish early keep pulling, so skewed per-item costs (a frontier
/// node with a huge expansion next to memo hits) self-balance. One job at
/// a time: ParallelFor blocks until every chunk is done, and the pool
/// must not be shared by concurrent callers.
class ThreadPool {
 public:
  /// Total lanes including the caller; `lanes - 1` workers are spawned.
  explicit ThreadPool(int lanes);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int lanes() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invokes fn(begin, end, lane) over dynamic chunks [begin, end) of
  /// [0, n), `chunk` items at a time, from lanes 0..lanes()-1 (each lane
  /// value is held by exactly one thread at a time, so per-lane scratch
  /// needs no synchronization). Returns after all n items completed.
  void ParallelFor(
      std::size_t n, std::size_t chunk,
      const std::function<void(std::size_t, std::size_t, int)>& fn);

 private:
  void WorkerLoop(int lane);
  /// Pulls chunks until the cursor passes n.
  void DrainChunks(int lane);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current job, written under mutex_ before workers are woken and read by
  // them only after observing the matching generation bump.
  const std::function<void(std::size_t, std::size_t, int)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunk_ = 1;
  std::atomic<std::size_t> cursor_{0};
  std::uint64_t generation_ = 0;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_COMMON_PARALLEL_H_
