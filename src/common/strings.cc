#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace rfidclean {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(std::size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%zu B", bytes);
  return StrFormat("%.1f %s", value, units[unit]);
}

}  // namespace rfidclean
