#include "common/crc32.h"

#include <array>

namespace rfidclean {

namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

// Slicing-by-8 [Kounavis & Berry]: kTables[0] is the classic byte-at-a-time
// table; kTables[k][i] advances the CRC of byte i through k further zero
// bytes, so eight table lookups consume eight input bytes per iteration
// with no dependent-shift chain between them. The produced CRC is
// bit-identical to the byte-at-a-time loop for every input.
constexpr std::array<std::array<std::uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPolynomial : 0u);
    }
    tables[0][i] = crc;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xFFu];
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables =
    MakeTables();

// Little-endian 32-bit load composed from bytes (endian-stable; compiles
// to a plain load on LE hosts).
inline std::uint32_t LoadLe32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (size >= 8) {
    const std::uint32_t lo = crc ^ LoadLe32(bytes);
    const std::uint32_t hi = LoadLe32(bytes + 4);
    crc = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
          kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
          kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace rfidclean
