#include "map/building_grid.h"

#include <tuple>

#include "common/check.h"

namespace rfidclean {

BuildingGrid BuildingGrid::Build(const Building& building, double cell_size) {
  BuildingGrid grid;
  grid.cell_size_ = cell_size;
  grid.floor_grids_.reserve(static_cast<std::size_t>(building.num_floors()));
  for (int floor = 0; floor < building.num_floors(); ++floor) {
    grid.floor_grids_.emplace_back(building.floor_bounds(), cell_size);
  }
  grid.cells_per_floor_ = grid.floor_grids_[0].NumCells();
  grid.total_cells_ = grid.cells_per_floor_ * building.num_floors();
  grid.cell_location_.assign(static_cast<std::size_t>(grid.total_cells_),
                             kInvalidLocation);
  grid.location_cells_.assign(building.NumLocations(), {});

  // Location interiors: walkable, owned by the location.
  for (std::size_t id = 0; id < building.NumLocations(); ++id) {
    const Location& loc = building.location(static_cast<LocationId>(id));
    OccupancyGrid& fg = grid.floor_grids_[static_cast<std::size_t>(loc.floor)];
    for (int local : fg.CellsInRect(loc.footprint)) {
      fg.SetWalkable(local, true);
      int global = loc.floor * grid.cells_per_floor_ + local;
      grid.cell_location_[static_cast<std::size_t>(global)] =
          static_cast<LocationId>(id);
      grid.location_cells_[id].push_back(global);
    }
  }

  // Door gaps: walkable but owned by no location. The carved square spans
  // the wall thickness so the two rooms become grid-connected exactly at the
  // doorway.
  for (const Door& door : building.doors()) {
    int floor = building.location(door.a).floor;
    OccupancyGrid& fg = grid.floor_grids_[static_cast<std::size_t>(floor)];
    double half = std::max(door.width / 2, cell_size);
    Rect carve = Rect{{door.position.x - half, door.position.y - half},
                      {door.position.x + half, door.position.y + half}};
    fg.SetWalkableInRect(carve, true);
  }

  // Staircases: connect the cells nearest to each stairwell center.
  for (const StairEdge& stair : building.stairs()) {
    const Location& lower = building.location(stair.lower);
    const Location& upper = building.location(stair.upper);
    int lower_local =
        grid.floor_grids_[static_cast<std::size_t>(lower.floor)].CellIndexAt(
            lower.footprint.Center());
    int upper_local =
        grid.floor_grids_[static_cast<std::size_t>(upper.floor)].CellIndexAt(
            upper.footprint.Center());
    RFID_CHECK_GE(lower_local, 0);
    RFID_CHECK_GE(upper_local, 0);
    grid.stair_cell_edges_.emplace_back(
        lower.floor * grid.cells_per_floor_ + lower_local,
        upper.floor * grid.cells_per_floor_ + upper_local, stair.length);
  }
  return grid;
}

const OccupancyGrid& BuildingGrid::floor_grid(int floor) const {
  RFID_CHECK_GE(floor, 0);
  RFID_CHECK_LT(static_cast<std::size_t>(floor), floor_grids_.size());
  return floor_grids_[static_cast<std::size_t>(floor)];
}

int BuildingGrid::GlobalCellAt(int floor, Vec2 p) const {
  int local = floor_grid(floor).CellIndexAt(p);
  if (local < 0) return -1;
  return floor * cells_per_floor_ + local;
}

std::pair<int, int> BuildingGrid::Split(int global_cell) const {
  RFID_CHECK_GE(global_cell, 0);
  RFID_CHECK_LT(global_cell, total_cells_);
  return {global_cell / cells_per_floor_, global_cell % cells_per_floor_};
}

Vec2 BuildingGrid::CellCenter(int global_cell) const {
  auto [floor, local] = Split(global_cell);
  return floor_grid(floor).CellCenter(local);
}

LocationId BuildingGrid::LocationOfCell(int global_cell) const {
  RFID_CHECK_GE(global_cell, 0);
  RFID_CHECK_LT(global_cell, total_cells_);
  return cell_location_[static_cast<std::size_t>(global_cell)];
}

bool BuildingGrid::IsWalkable(int global_cell) const {
  auto [floor, local] = Split(global_cell);
  return floor_grid(floor).IsWalkable(local);
}

const std::vector<int>& BuildingGrid::CellsOfLocation(
    LocationId location) const {
  RFID_CHECK_GE(location, 0);
  RFID_CHECK_LT(static_cast<std::size_t>(location), location_cells_.size());
  return location_cells_[static_cast<std::size_t>(location)];
}

}  // namespace rfidclean
