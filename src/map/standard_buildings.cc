#include "map/standard_buildings.h"

#include <vector>

#include "common/check.h"
#include "common/strings.h"

namespace rfidclean {

Building MakeOfficeBuilding(int num_floors) {
  RFID_CHECK_GE(num_floors, 1);
  const Rect floor_bounds{{0.0, 0.0}, {20.0, 12.0}};
  BuildingBuilder builder(floor_bounds);

  std::vector<LocationId> stairwells;
  for (int floor = 0; floor < num_floors; ++floor) {
    auto name = [floor](const char* room) {
      return StrFormat("F%d.%s", floor, room);
    };
    // Top row rooms.
    LocationId a = builder.AddLocation(name("RoomA"), LocationKind::kRoom,
                                       floor, {{0.5, 7.0}, {6.0, 11.5}});
    LocationId b = builder.AddLocation(name("RoomB"), LocationKind::kRoom,
                                       floor, {{6.5, 7.0}, {12.0, 11.5}});
    LocationId c = builder.AddLocation(name("RoomC"), LocationKind::kRoom,
                                       floor, {{12.5, 7.0}, {17.0, 11.5}});
    // Bottom row rooms.
    LocationId d = builder.AddLocation(name("RoomD"), LocationKind::kRoom,
                                       floor, {{0.5, 0.5}, {6.0, 5.0}});
    LocationId e = builder.AddLocation(name("RoomE"), LocationKind::kRoom,
                                       floor, {{6.5, 0.5}, {12.0, 5.0}});
    LocationId f = builder.AddLocation(name("RoomF"), LocationKind::kRoom,
                                       floor, {{12.5, 0.5}, {17.0, 5.0}});
    // Central corridor and stairwell.
    LocationId h = builder.AddLocation(name("Corridor"),
                                       LocationKind::kCorridor, floor,
                                       {{0.5, 5.5}, {17.0, 6.5}});
    LocationId s = builder.AddLocation(name("Stairs"),
                                       LocationKind::kStairwell, floor,
                                       {{17.5, 4.5}, {19.5, 7.5}});

    // Room-corridor doors (wall gap y in [6.5, 7.0] above, [5.0, 5.5] below).
    builder.AddDoor(a, h, {3.25, 6.75});
    builder.AddDoor(b, h, {9.25, 6.75});
    builder.AddDoor(c, h, {14.75, 6.75});
    builder.AddDoor(d, h, {3.25, 5.25});
    builder.AddDoor(e, h, {9.25, 5.25});
    builder.AddDoor(f, h, {14.75, 5.25});
    // Room-room doors that bypass the corridor.
    builder.AddDoor(a, b, {6.25, 9.25});
    builder.AddDoor(e, f, {12.25, 2.75});
    // Corridor-stairwell door (wall gap x in [17.0, 17.5]).
    builder.AddDoor(h, s, {17.25, 6.0});

    stairwells.push_back(s);
    if (floor > 0) {
      builder.AddStairs(stairwells[static_cast<std::size_t>(floor) - 1], s,
                        /*length=*/4.0);
    }
  }

  Result<Building> result = builder.Build();
  RFID_CHECK(result.ok());
  return std::move(result).value();
}

Building MakeMuseumWing(int halls_per_row) {
  RFID_CHECK_GE(halls_per_row, 2);
  const double kHallWidth = 8.0;
  const double kGap = 0.5;
  const double kStride = kHallWidth + kGap;  // 8.5
  const double max_x = 12.5 + (halls_per_row - 1) * kStride;
  BuildingBuilder builder(Rect{{0.0, 0.0}, {max_x, 13.5}});

  LocationId lobby = builder.AddLocation(
      "Lobby", LocationKind::kCorridor, 0, {{0.5, 0.5}, {3.5, 6.5}});

  std::vector<LocationId> row1;
  std::vector<LocationId> row2;
  for (int i = 0; i < halls_per_row; ++i) {
    double x0 = 4.0 + i * kStride;
    row1.push_back(builder.AddLocation(
        StrFormat("Hall1%c", 'A' + i), LocationKind::kRoom, 0,
        {{x0, 0.5}, {x0 + kHallWidth, 6.5}}));
    row2.push_back(builder.AddLocation(
        StrFormat("Hall2%c", 'A' + i), LocationKind::kRoom, 0,
        {{x0, 7.0}, {x0 + kHallWidth, 13.0}}));
  }

  builder.AddDoor(lobby, row1[0], {3.75, 3.5});
  for (int i = 0; i + 1 < halls_per_row; ++i) {
    double door_x = 12.25 + i * kStride;  // Mid-gap between halls i, i+1.
    builder.AddDoor(row1[static_cast<std::size_t>(i)],
                    row1[static_cast<std::size_t>(i) + 1], {door_x, 3.5});
    builder.AddDoor(row2[static_cast<std::size_t>(i)],
                    row2[static_cast<std::size_t>(i) + 1], {door_x, 10.0});
  }
  // Join the rows at both ends, closing the visiting loop.
  builder.AddDoor(row1.front(), row2.front(), {8.0, 6.75});
  builder.AddDoor(row1.back(), row2.back(),
                  {8.0 + (halls_per_row - 1) * kStride, 6.75});

  Result<Building> result = builder.Build();
  RFID_CHECK(result.ok());
  return std::move(result).value();
}

Building MakeSyn1Building() { return MakeOfficeBuilding(4); }

Building MakeSyn2Building() { return MakeOfficeBuilding(8); }

}  // namespace rfidclean
