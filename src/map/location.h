#ifndef RFIDCLEAN_MAP_LOCATION_H_
#define RFIDCLEAN_MAP_LOCATION_H_

#include <cstdint>
#include <string>

#include "geometry/rect.h"

namespace rfidclean {

/// Identifier of a location within a Building (dense, 0-based).
using LocationId = std::int32_t;

/// Sentinel for "no location" (e.g., a point inside a wall).
inline constexpr LocationId kInvalidLocation = -1;

/// The role of a location; corridors are exempt from latency constraints
/// (§6.3) and stairwells link consecutive floors.
enum class LocationKind : std::uint8_t {
  kRoom,
  kCorridor,
  kStairwell,
};

/// Returns "room", "corridor" or "stairwell".
const char* LocationKindToString(LocationKind kind);

/// A named rectangular location on one floor of a building. This mirrors the
/// paper's map input format, where rooms are described by the coordinates of
/// their top-left and bottom-right corners (§6.4).
struct Location {
  std::string name;
  LocationKind kind = LocationKind::kRoom;
  int floor = 0;
  Rect footprint;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_MAP_LOCATION_H_
