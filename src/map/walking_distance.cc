#include "map/walking_distance.h"

#include <algorithm>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace rfidclean {

namespace {

/// Adjacency over global cells: per-floor grid moves plus stair edges.
class GlobalCellGraph {
 public:
  explicit GlobalCellGraph(const BuildingGrid& grid) : grid_(grid) {
    for (auto [a, b, length] : grid.stair_cell_edges()) {
      stair_out_[a].emplace_back(b, length);
      stair_out_[b].emplace_back(a, length);
    }
  }

  void AppendNeighbors(int global,
                       std::vector<std::pair<int, double>>* out) const {
    auto [floor, local] = grid_.Split(global);
    scratch_.clear();
    grid_.floor_grid(floor).AppendNeighbors(local, &scratch_);
    int base = floor * grid_.CellsPerFloor();
    for (auto [next_local, cost] : scratch_) {
      out->emplace_back(base + next_local, cost);
    }
    auto it = stair_out_.find(global);
    if (it != stair_out_.end()) {
      for (auto [next, cost] : it->second) out->emplace_back(next, cost);
    }
  }

 private:
  const BuildingGrid& grid_;
  std::unordered_map<int, std::vector<std::pair<int, double>>> stair_out_;
  mutable std::vector<std::pair<int, double>> scratch_;
};

std::vector<double> DijkstraFrom(const GlobalCellGraph& graph,
                                 const std::vector<int>& sources,
                                 const BuildingGrid& grid) {
  std::vector<double> dist(static_cast<std::size_t>(grid.NumCells()),
                           kInfiniteDistance);
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int s : sources) {
    if (!grid.IsWalkable(s)) continue;
    dist[static_cast<std::size_t>(s)] = 0.0;
    queue.emplace(0.0, s);
  }
  std::vector<std::pair<int, double>> neighbors;
  while (!queue.empty()) {
    auto [d, cell] = queue.top();
    queue.pop();
    if (d > dist[static_cast<std::size_t>(cell)]) continue;
    neighbors.clear();
    graph.AppendNeighbors(cell, &neighbors);
    for (auto [next, step] : neighbors) {
      double nd = d + step;
      if (nd < dist[static_cast<std::size_t>(next)]) {
        dist[static_cast<std::size_t>(next)] = nd;
        queue.emplace(nd, next);
      }
    }
  }
  return dist;
}

}  // namespace

WalkingDistances WalkingDistances::Compute(const Building& building,
                                           const BuildingGrid& grid) {
  WalkingDistances result;
  const std::size_t n = building.NumLocations();
  result.num_locations_ = n;
  result.matrix_.assign(n * n, kInfiniteDistance);
  GlobalCellGraph graph(grid);
  for (std::size_t a = 0; a < n; ++a) {
    const auto& source_cells = grid.CellsOfLocation(static_cast<LocationId>(a));
    std::vector<double> dist = DijkstraFrom(graph, source_cells, grid);
    for (std::size_t b = 0; b < n; ++b) {
      double best = kInfiniteDistance;
      for (int cell : grid.CellsOfLocation(static_cast<LocationId>(b))) {
        best = std::min(best, dist[static_cast<std::size_t>(cell)]);
      }
      result.matrix_[a * n + b] = (a == b) ? 0.0 : best;
    }
  }
  return result;
}

double WalkingDistances::MetersBetween(LocationId a, LocationId b) const {
  RFID_CHECK_GE(a, 0);
  RFID_CHECK_GE(b, 0);
  RFID_CHECK_LT(static_cast<std::size_t>(a), num_locations_);
  RFID_CHECK_LT(static_cast<std::size_t>(b), num_locations_);
  return matrix_[static_cast<std::size_t>(a) * num_locations_ +
                 static_cast<std::size_t>(b)];
}

}  // namespace rfidclean
