#ifndef RFIDCLEAN_MAP_BUILDING_GRID_H_
#define RFIDCLEAN_MAP_BUILDING_GRID_H_

#include <utility>
#include <vector>

#include "geometry/grid.h"
#include "map/building.h"

namespace rfidclean {

/// A building-wide regular-grid discretization (the paper's 0.5 m × 0.5 m
/// cells, §6.2): one OccupancyGrid per floor plus a flat global cell index
/// spanning all floors. Walkable cells are those inside a location footprint
/// or inside a door gap; the global index is shared by
///  - the reader detection-rate matrix F[r, c] (src/rfid),
///  - the reading generator (src/gen),
///  - the walking-distance computation (map/walking_distance).
class BuildingGrid {
 public:
  /// Discretizes `building` with square cells of side `cell_size`.
  static BuildingGrid Build(const Building& building, double cell_size = 0.5);

  double cell_size() const { return cell_size_; }
  int num_floors() const { return static_cast<int>(floor_grids_.size()); }
  const OccupancyGrid& floor_grid(int floor) const;

  /// Total number of cells across all floors.
  int NumCells() const { return total_cells_; }

  /// Number of cells in each floor grid (identical across floors).
  int CellsPerFloor() const { return cells_per_floor_; }

  /// Global cell index at a point, or -1 when outside the floor bounds.
  int GlobalCellAt(int floor, Vec2 p) const;

  /// Floor and in-floor cell index of a global cell.
  std::pair<int, int> Split(int global_cell) const;

  /// Floor of a global cell.
  int FloorOfCell(int global_cell) const { return Split(global_cell).first; }

  /// Center point of a global cell (floor implied by the index).
  Vec2 CellCenter(int global_cell) const;

  /// The location owning a cell's center, or kInvalidLocation for wall and
  /// door-gap cells.
  LocationId LocationOfCell(int global_cell) const;

  bool IsWalkable(int global_cell) const;

  /// Cells belonging to `location` — the paper's Cells(l).
  const std::vector<int>& CellsOfLocation(LocationId location) const;

  /// Inter-floor walk edges (global cell, global cell, meters), one per
  /// staircase, connecting representative stairwell cells.
  const std::vector<std::tuple<int, int, double>>& stair_cell_edges() const {
    return stair_cell_edges_;
  }

 private:
  BuildingGrid() = default;

  double cell_size_ = 0.5;
  int cells_per_floor_ = 0;
  int total_cells_ = 0;
  std::vector<OccupancyGrid> floor_grids_;
  std::vector<LocationId> cell_location_;  // by global index
  std::vector<std::vector<int>> location_cells_;
  std::vector<std::tuple<int, int, double>> stair_cell_edges_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_MAP_BUILDING_GRID_H_
