#ifndef RFIDCLEAN_MAP_STANDARD_BUILDINGS_H_
#define RFIDCLEAN_MAP_STANDARD_BUILDINGS_H_

#include "map/building.h"

namespace rfidclean {

/// Builders for the evaluation buildings of §6.1. Each floor mirrors the
/// topology of the paper's Fig. 1(a): six rooms flanking a central corridor,
/// two room-to-room doors not passing through the corridor, and a stairwell
/// at the corridor's end linking consecutive floors.
///
/// Floor layout (20 m x 12 m, 0.5 m walls, coordinates in meters):
///
///   y=11.5 +----------+ +----------+ +---------+
///          |  RoomA   |=|  RoomB   | |  RoomC  |          = room-room door
///   y= 7.0 +----==----+ +----==----+ +---==----+
///   y= 6.5 +------------- Corridor ----------+ +-------+
///   y= 5.5 +----------------------------------+==|Stairs|
///   y= 5.0 +----==----+ +----==----+ +---==---+ +-------+
///          |  RoomD   | |  RoomE   |=|  RoomF  |
///   y= 0.5 +----------+ +----------+ +---------+
///
/// Per floor: 8 locations (6 rooms, 1 corridor, 1 stairwell), 9 doors.
/// Location names are "F<floor>.<name>", e.g. "F2.RoomA", "F0.Corridor".

/// A building with `num_floors` identical floors as drawn above.
Building MakeOfficeBuilding(int num_floors);

/// A single-floor museum wing: a 2 x `halls_per_row` grid of large
/// exhibition halls connected in a visiting loop (each hall opens into its
/// row neighbor, and the two rows are joined at both ends), plus an
/// entrance lobby (corridor kind, no latency inferred) on the left:
///
///   +--------+ +--------+ +--------+
///   | Hall2A |=| Hall2B |=| Hall2C |       = door
///   +---||---+ +--------+ +---||---+       || door joining the rows
///   +---||---+ +--------+ +---||---+
///   | Hall1A |=| Hall1B |=| Hall1C |
///   +--------+ +--------+ +--------+
///      || Lobby attached to Hall1A
///
/// A different topology from the office preset (cycles instead of a
/// corridor spine), used to check that nothing in the pipeline assumes
/// tree-like maps. Requires halls_per_row >= 2.
Building MakeMuseumWing(int halls_per_row);

/// The SYN1 building: four floors (§6.1).
Building MakeSyn1Building();

/// The SYN2 building: eight floors (§6.1).
Building MakeSyn2Building();

}  // namespace rfidclean

#endif  // RFIDCLEAN_MAP_STANDARD_BUILDINGS_H_
