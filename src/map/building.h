#ifndef RFIDCLEAN_MAP_BUILDING_H_
#define RFIDCLEAN_MAP_BUILDING_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geometry/rect.h"
#include "map/location.h"

namespace rfidclean {

/// A doorway between two locations on the same floor. Doors are the edges of
/// the paper's graph of locations, labeled with their coordinates (§6.4).
struct Door {
  LocationId a = kInvalidLocation;
  LocationId b = kInvalidLocation;
  Vec2 position;       ///< Center of the doorway, inside the wall gap.
  double width = 1.0;  ///< Clear width in meters.
};

/// A staircase connecting the stairwell locations of two consecutive floors.
/// Counts as a direct connection for reachability, like a door.
struct StairEdge {
  LocationId lower = kInvalidLocation;
  LocationId upper = kInvalidLocation;
  double length = 4.0;  ///< Walking length of the staircase in meters.
};

/// An immutable multi-floor indoor map: rectangular locations, doors, and
/// staircases. Construct through BuildingBuilder, which validates geometry.
class Building {
 public:
  int num_floors() const { return num_floors_; }
  const Rect& floor_bounds() const { return floor_bounds_; }

  std::size_t NumLocations() const { return locations_.size(); }
  const Location& location(LocationId id) const;
  const std::vector<Location>& locations() const { return locations_; }
  const std::vector<Door>& doors() const { return doors_; }
  const std::vector<StairEdge>& stairs() const { return stairs_; }

  /// Id of the location with the given name, or kInvalidLocation.
  LocationId FindLocationByName(std::string_view name) const;

  /// Location whose footprint contains `p` on `floor`, or kInvalidLocation
  /// (e.g., inside a wall or door gap).
  LocationId LocationAt(int floor, Vec2 p) const;

  /// Like LocationAt but, for points in walls/door gaps, falls back to the
  /// nearest footprint within `tolerance` meters. Used to assign ground-truth
  /// locations to continuous trajectory samples crossing doorways.
  LocationId LocationNear(int floor, Vec2 p, double tolerance = 0.75) const;

  /// True when a door or staircase directly connects `a` and `b`, or a == b.
  bool AreDirectlyConnected(LocationId a, LocationId b) const;

  /// Locations directly connected to `id` (excluding `id` itself).
  const std::vector<LocationId>& Neighbors(LocationId id) const;

  /// Doors incident to `id` (indices into doors()).
  const std::vector<int>& DoorsOf(LocationId id) const;

  /// Stair edges incident to `id` (indices into stairs()).
  const std::vector<int>& StairsOf(LocationId id) const;

 private:
  friend class BuildingBuilder;
  Building() = default;

  int num_floors_ = 0;
  Rect floor_bounds_;
  std::vector<Location> locations_;
  std::vector<Door> doors_;
  std::vector<StairEdge> stairs_;
  std::vector<std::vector<LocationId>> neighbors_;
  std::vector<std::vector<int>> doors_of_;
  std::vector<std::vector<int>> stairs_of_;
};

/// Incremental, validating Building constructor.
class BuildingBuilder {
 public:
  /// `floor_bounds` is the common extent of every floor.
  explicit BuildingBuilder(const Rect& floor_bounds);

  /// Adds a location; returns its id. Footprint must lie inside the floor
  /// bounds (validated in Build()).
  LocationId AddLocation(std::string name, LocationKind kind, int floor,
                         const Rect& footprint);

  /// Adds a door between two previously added locations on the same floor.
  void AddDoor(LocationId a, LocationId b, Vec2 position, double width = 1.0);

  /// Adds a staircase between two stairwell locations on consecutive floors.
  void AddStairs(LocationId lower, LocationId upper, double length = 4.0);

  /// Validates and produces the Building:
  ///  - at least one location; unique names;
  ///  - footprints inside floor bounds and non-overlapping per floor;
  ///  - doors connect distinct locations that share a floor;
  ///  - stairs connect locations on consecutive floors.
  Result<Building> Build();

 private:
  Building building_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_MAP_BUILDING_H_
