#ifndef RFIDCLEAN_MAP_WALKING_DISTANCE_H_
#define RFIDCLEAN_MAP_WALKING_DISTANCE_H_

#include <vector>

#include "map/building.h"
#include "map/building_grid.h"

namespace rfidclean {

/// Minimum walking distances between every pair of locations, computed on
/// the building grid (per-floor 8-connected Dijkstra plus staircase edges).
/// These distances feed the traveling-time constraint inference of §6.3:
/// travelingTime(l1, l2, ceil(dist(l1, l2) / v_max)).
class WalkingDistances {
 public:
  /// Runs one multi-source Dijkstra per location over the global cell graph.
  static WalkingDistances Compute(const Building& building,
                                  const BuildingGrid& grid);

  /// Minimum walking distance in meters between any point of `a` and any
  /// point of `b` (0 when a == b); kInfiniteDistance when disconnected.
  double MetersBetween(LocationId a, LocationId b) const;

  std::size_t NumLocations() const { return num_locations_; }

 private:
  WalkingDistances() = default;

  std::size_t num_locations_ = 0;
  std::vector<double> matrix_;  // row-major num_locations x num_locations
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_MAP_WALKING_DISTANCE_H_
