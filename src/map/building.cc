#include "map/building.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace rfidclean {

const char* LocationKindToString(LocationKind kind) {
  switch (kind) {
    case LocationKind::kRoom:
      return "room";
    case LocationKind::kCorridor:
      return "corridor";
    case LocationKind::kStairwell:
      return "stairwell";
  }
  return "unknown";
}

const Location& Building::location(LocationId id) const {
  RFID_CHECK_GE(id, 0);
  RFID_CHECK_LT(static_cast<std::size_t>(id), locations_.size());
  return locations_[static_cast<std::size_t>(id)];
}

LocationId Building::FindLocationByName(std::string_view name) const {
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    if (locations_[i].name == name) return static_cast<LocationId>(i);
  }
  return kInvalidLocation;
}

LocationId Building::LocationAt(int floor, Vec2 p) const {
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    const Location& loc = locations_[i];
    if (loc.floor == floor && loc.footprint.Contains(p)) {
      return static_cast<LocationId>(i);
    }
  }
  return kInvalidLocation;
}

LocationId Building::LocationNear(int floor, Vec2 p, double tolerance) const {
  LocationId best = kInvalidLocation;
  double best_distance = tolerance;
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    const Location& loc = locations_[i];
    if (loc.floor != floor) continue;
    double d = DistanceToRect(p, loc.footprint);
    if (d == 0.0) return static_cast<LocationId>(i);
    if (d <= best_distance) {
      best_distance = d;
      best = static_cast<LocationId>(i);
    }
  }
  return best;
}

bool Building::AreDirectlyConnected(LocationId a, LocationId b) const {
  if (a == b) return true;
  const auto& neighbors = Neighbors(a);
  return std::find(neighbors.begin(), neighbors.end(), b) != neighbors.end();
}

const std::vector<LocationId>& Building::Neighbors(LocationId id) const {
  RFID_CHECK_GE(id, 0);
  RFID_CHECK_LT(static_cast<std::size_t>(id), neighbors_.size());
  return neighbors_[static_cast<std::size_t>(id)];
}

const std::vector<int>& Building::DoorsOf(LocationId id) const {
  RFID_CHECK_GE(id, 0);
  RFID_CHECK_LT(static_cast<std::size_t>(id), doors_of_.size());
  return doors_of_[static_cast<std::size_t>(id)];
}

const std::vector<int>& Building::StairsOf(LocationId id) const {
  RFID_CHECK_GE(id, 0);
  RFID_CHECK_LT(static_cast<std::size_t>(id), stairs_of_.size());
  return stairs_of_[static_cast<std::size_t>(id)];
}

BuildingBuilder::BuildingBuilder(const Rect& floor_bounds) {
  building_.floor_bounds_ = floor_bounds;
}

LocationId BuildingBuilder::AddLocation(std::string name, LocationKind kind,
                                        int floor, const Rect& footprint) {
  RFID_CHECK_GE(floor, 0);
  Location loc;
  loc.name = std::move(name);
  loc.kind = kind;
  loc.floor = floor;
  loc.footprint = footprint;
  building_.locations_.push_back(std::move(loc));
  building_.num_floors_ = std::max(building_.num_floors_, floor + 1);
  return static_cast<LocationId>(building_.locations_.size() - 1);
}

void BuildingBuilder::AddDoor(LocationId a, LocationId b, Vec2 position,
                              double width) {
  building_.doors_.push_back(Door{a, b, position, width});
}

void BuildingBuilder::AddStairs(LocationId lower, LocationId upper,
                                double length) {
  building_.stairs_.push_back(StairEdge{lower, upper, length});
}

Result<Building> BuildingBuilder::Build() {
  Building& b = building_;
  if (b.locations_.empty()) {
    return InvalidArgumentError("building has no locations");
  }
  const std::size_t n = b.locations_.size();
  // Unique names, in-bounds footprints.
  for (std::size_t i = 0; i < n; ++i) {
    const Location& li = b.locations_[i];
    if (li.footprint.Width() <= 0.0 || li.footprint.Height() <= 0.0) {
      return InvalidArgumentError(
          StrFormat("location '%s' has an empty footprint", li.name.c_str()));
    }
    if (!b.floor_bounds_.Contains(li.footprint.min) ||
        !b.floor_bounds_.Contains(li.footprint.max)) {
      return InvalidArgumentError(StrFormat(
          "location '%s' exceeds the floor bounds", li.name.c_str()));
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      const Location& lj = b.locations_[j];
      if (li.name == lj.name) {
        return InvalidArgumentError(
            StrFormat("duplicate location name '%s'", li.name.c_str()));
      }
      if (li.floor == lj.floor && li.footprint.Intersects(lj.footprint)) {
        // Shared boundary points are fine; require positive-area overlap.
        Rect overlap = Rect{{std::max(li.footprint.min.x, lj.footprint.min.x),
                             std::max(li.footprint.min.y, lj.footprint.min.y)},
                            {std::min(li.footprint.max.x, lj.footprint.max.x),
                             std::min(li.footprint.max.y,
                                      lj.footprint.max.y)}};
        if (overlap.Width() > 0.0 && overlap.Height() > 0.0) {
          return InvalidArgumentError(
              StrFormat("locations '%s' and '%s' overlap", li.name.c_str(),
                        lj.name.c_str()));
        }
      }
    }
  }
  auto valid_id = [&](LocationId id) {
    return id >= 0 && static_cast<std::size_t>(id) < n;
  };
  for (const Door& d : b.doors_) {
    if (!valid_id(d.a) || !valid_id(d.b) || d.a == d.b) {
      return InvalidArgumentError("door endpoints invalid");
    }
    if (b.locations_[d.a].floor != b.locations_[d.b].floor) {
      return InvalidArgumentError(
          "door connects locations on different floors");
    }
    if (d.width <= 0.0) return InvalidArgumentError("door width must be > 0");
  }
  for (const StairEdge& s : b.stairs_) {
    if (!valid_id(s.lower) || !valid_id(s.upper) || s.lower == s.upper) {
      return InvalidArgumentError("stair endpoints invalid");
    }
    if (b.locations_[s.upper].floor != b.locations_[s.lower].floor + 1) {
      return InvalidArgumentError(
          "stairs must connect consecutive floors (lower to upper)");
    }
    if (s.length <= 0.0) {
      return InvalidArgumentError("stair length must be > 0");
    }
  }

  // Adjacency indexes.
  b.neighbors_.assign(n, {});
  b.doors_of_.assign(n, {});
  b.stairs_of_.assign(n, {});
  auto link = [&](LocationId x, LocationId y) {
    auto& v = b.neighbors_[static_cast<std::size_t>(x)];
    if (std::find(v.begin(), v.end(), y) == v.end()) v.push_back(y);
  };
  for (std::size_t i = 0; i < b.doors_.size(); ++i) {
    const Door& d = b.doors_[i];
    link(d.a, d.b);
    link(d.b, d.a);
    b.doors_of_[static_cast<std::size_t>(d.a)].push_back(static_cast<int>(i));
    b.doors_of_[static_cast<std::size_t>(d.b)].push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < b.stairs_.size(); ++i) {
    const StairEdge& s = b.stairs_[i];
    link(s.lower, s.upper);
    link(s.upper, s.lower);
    b.stairs_of_[static_cast<std::size_t>(s.lower)].push_back(
        static_cast<int>(i));
    b.stairs_of_[static_cast<std::size_t>(s.upper)].push_back(
        static_cast<int>(i));
  }
  return std::move(building_);
}

}  // namespace rfidclean
