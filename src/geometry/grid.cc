#include "geometry/grid.h"

#include <cmath>
#include <queue>
#include <utility>

#include "common/check.h"

namespace rfidclean {

OccupancyGrid::OccupancyGrid(const Rect& bounds, double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  RFID_CHECK_GT(cell_size, 0.0);
  RFID_CHECK_GT(bounds.Width(), 0.0);
  RFID_CHECK_GT(bounds.Height(), 0.0);
  cols_ = static_cast<int>(std::ceil(bounds.Width() / cell_size - 1e-9));
  rows_ = static_cast<int>(std::ceil(bounds.Height() / cell_size - 1e-9));
  walkable_.assign(static_cast<std::size_t>(cols_) * rows_, false);
}

int OccupancyGrid::CellIndexAt(Vec2 p) const {
  if (!bounds_.Contains(p)) return -1;
  int col = static_cast<int>((p.x - bounds_.min.x) / cell_size_);
  int row = static_cast<int>((p.y - bounds_.min.y) / cell_size_);
  if (col >= cols_) col = cols_ - 1;  // Points exactly on the max edge.
  if (row >= rows_) row = rows_ - 1;
  return row * cols_ + col;
}

Vec2 OccupancyGrid::CellCenter(int index) const {
  RFID_CHECK_GE(index, 0);
  RFID_CHECK_LT(index, NumCells());
  int row = index / cols_;
  int col = index % cols_;
  return {bounds_.min.x + (col + 0.5) * cell_size_,
          bounds_.min.y + (row + 0.5) * cell_size_};
}

Rect OccupancyGrid::CellRect(int index) const {
  Vec2 center = CellCenter(index);
  double h = cell_size_ / 2;
  return Rect{{center.x - h, center.y - h}, {center.x + h, center.y + h}};
}

void OccupancyGrid::SetWalkableInRect(const Rect& region, bool walkable) {
  for (int index : CellsInRect(region)) walkable_[index] = walkable;
}

std::vector<int> OccupancyGrid::CellsInRect(const Rect& region) const {
  std::vector<int> out;
  for (int index = 0; index < NumCells(); ++index) {
    if (region.Contains(CellCenter(index))) out.push_back(index);
  }
  return out;
}

void OccupancyGrid::AppendNeighbors(
    int index, std::vector<std::pair<int, double>>* out) const {
  if (!walkable_[index]) return;
  const int row = index / cols_;
  const int col = index % cols_;
  const double diag = cell_size_ * std::sqrt(2.0);
  auto walkable_at = [&](int r, int c) {
    return r >= 0 && r < rows_ && c >= 0 && c < cols_ &&
           walkable_[r * cols_ + c];
  };
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      int r = row + dr;
      int c = col + dc;
      if (!walkable_at(r, c)) continue;
      if (dr != 0 && dc != 0) {
        // Diagonal moves must not squeeze between two wall cells.
        if (!walkable_at(row, c) || !walkable_at(r, col)) continue;
        out->emplace_back(r * cols_ + c, diag);
      } else {
        out->emplace_back(r * cols_ + c, cell_size_);
      }
    }
  }
}

std::vector<double> OccupancyGrid::ShortestDistances(
    const std::vector<int>& sources) const {
  std::vector<double> dist(NumCells(), kInfiniteDistance);
  using Entry = std::pair<double, int>;  // (distance, cell)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int s : sources) {
    RFID_CHECK_GE(s, 0);
    RFID_CHECK_LT(s, NumCells());
    if (!walkable_[s]) continue;
    if (dist[s] > 0.0) {
      dist[s] = 0.0;
      queue.emplace(0.0, s);
    }
  }
  std::vector<std::pair<int, double>> neighbors;
  while (!queue.empty()) {
    auto [d, cell] = queue.top();
    queue.pop();
    if (d > dist[cell]) continue;
    neighbors.clear();
    AppendNeighbors(cell, &neighbors);
    for (auto [next, step] : neighbors) {
      double nd = d + step;
      if (nd < dist[next]) {
        dist[next] = nd;
        queue.emplace(nd, next);
      }
    }
  }
  return dist;
}

}  // namespace rfidclean
