#ifndef RFIDCLEAN_GEOMETRY_VEC2_H_
#define RFIDCLEAN_GEOMETRY_VEC2_H_

#include <cmath>

namespace rfidclean {

/// A 2-D point / vector in metric floor coordinates (meters).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend Vec2 operator*(double s, Vec2 a) { return a * s; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  /// Euclidean norm.
  double Norm() const { return std::sqrt(x * x + y * y); }
};

/// Euclidean distance between two points.
inline double Distance(Vec2 a, Vec2 b) { return (a - b).Norm(); }

/// Linear interpolation: a at t=0, b at t=1.
inline Vec2 Lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

}  // namespace rfidclean

#endif  // RFIDCLEAN_GEOMETRY_VEC2_H_
