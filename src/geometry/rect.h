#ifndef RFIDCLEAN_GEOMETRY_RECT_H_
#define RFIDCLEAN_GEOMETRY_RECT_H_

#include <algorithm>

#include "geometry/vec2.h"

namespace rfidclean {

/// An axis-aligned rectangle given by its min (bottom-left) and max
/// (top-right) corners. Rooms, corridors and reader coverage boxes are
/// rectangles; this mirrors the paper's map input, which describes rooms by
/// the coordinates of two opposite corners (§6.4).
struct Rect {
  Vec2 min;
  Vec2 max;

  static Rect FromCorners(Vec2 a, Vec2 b) {
    return Rect{{std::min(a.x, b.x), std::min(a.y, b.y)},
                {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }

  double Width() const { return max.x - min.x; }
  double Height() const { return max.y - min.y; }
  double Area() const { return Width() * Height(); }
  Vec2 Center() const { return {(min.x + max.x) / 2, (min.y + max.y) / 2}; }

  /// Point containment; boundaries inclusive.
  bool Contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// True when the closed rectangles share at least one point.
  bool Intersects(const Rect& other) const {
    return min.x <= other.max.x && other.min.x <= max.x &&
           min.y <= other.max.y && other.min.y <= max.y;
  }

  /// Rectangle grown by `margin` on every side.
  Rect Expanded(double margin) const {
    return Rect{{min.x - margin, min.y - margin},
                {max.x + margin, max.y + margin}};
  }

  /// Clamps `p` to the closest point inside the rectangle.
  Vec2 ClosestPointTo(Vec2 p) const {
    return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min == b.min && a.max == b.max;
  }
};

/// Euclidean distance from a point to a rectangle (0 if inside).
inline double DistanceToRect(Vec2 p, const Rect& r) {
  return Distance(p, r.ClosestPointTo(p));
}

}  // namespace rfidclean

#endif  // RFIDCLEAN_GEOMETRY_RECT_H_
