#ifndef RFIDCLEAN_GEOMETRY_GRID_H_
#define RFIDCLEAN_GEOMETRY_GRID_H_

#include <limits>
#include <vector>

#include "geometry/rect.h"
#include "geometry/vec2.h"

namespace rfidclean {

/// Distance value used for unreachable cells.
inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

/// A regular square-cell partition of a floor, used for
///  (a) the reader calibration matrix F[r,c] of §6.2 (one column per cell),
///  (b) minimum walking distances feeding the traveling-time constraint
///      inference of §6.3 (8-connected Dijkstra through walkable cells).
///
/// Cells are indexed row-major: index = row * cols + col, with cell (0,0) at
/// the rectangle's min corner.
class OccupancyGrid {
 public:
  /// Partitions `bounds` into square cells of side `cell_size` (the paper
  /// uses 0.5 m). Cells start non-walkable.
  OccupancyGrid(const Rect& bounds, double cell_size);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  int NumCells() const { return cols_ * rows_; }
  double cell_size() const { return cell_size_; }
  const Rect& bounds() const { return bounds_; }

  /// Index of the cell containing `p`, or -1 if outside the bounds.
  int CellIndexAt(Vec2 p) const;

  /// Center point of cell `index`.
  Vec2 CellCenter(int index) const;

  /// Geometric extent of cell `index`.
  Rect CellRect(int index) const;

  bool IsWalkable(int index) const { return walkable_[index]; }
  void SetWalkable(int index, bool walkable) { walkable_[index] = walkable; }

  /// Marks every cell whose center lies inside `region`.
  void SetWalkableInRect(const Rect& region, bool walkable);

  /// Indices of all cells whose center lies inside `region`.
  std::vector<int> CellsInRect(const Rect& region) const;

  /// Single-floor multi-source Dijkstra over walkable cells with
  /// 8-connectivity (orthogonal step = cell_size, diagonal = cell_size * √2;
  /// diagonals require both adjacent orthogonal cells to be walkable, so
  /// paths cannot cut wall corners). Returns, for every cell, the walking
  /// distance in meters from the nearest source (kInfiniteDistance when
  /// unreachable). Non-walkable sources are ignored.
  std::vector<double> ShortestDistances(const std::vector<int>& sources) const;

  /// Neighbors of `index` with step costs, as (neighbor index, meters).
  /// Exposed so multi-floor graphs (map/walking_distance) can reuse the
  /// same connectivity.
  void AppendNeighbors(int index,
                       std::vector<std::pair<int, double>>* out) const;

 private:
  Rect bounds_;
  double cell_size_;
  int cols_;
  int rows_;
  std::vector<bool> walkable_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_GEOMETRY_GRID_H_
