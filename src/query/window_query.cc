#include "query/window_query.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "query/marginals.h"

namespace rfidclean {

namespace {

void CheckWindow(const CtGraph& graph, Timestamp from, Timestamp to) {
  RFID_CHECK_GE(from, 0);
  RFID_CHECK_LE(from, to);
  RFID_CHECK_LT(to, graph.length());
}

/// Total mass of paths whose steps inside [from, to] all satisfy
/// `allowed(location)`: a forward pass over the graph with disallowed
/// nodes zeroed inside the window.
template <typename Allowed>
double MassOfConstrainedPaths(const CtGraph& graph, Timestamp from,
                              Timestamp to, Allowed allowed) {
  std::vector<double> alpha(graph.NumNodes(), 0.0);
  for (NodeId id : graph.SourceNodes()) {
    const CtGraph::Node& node = graph.node(id);
    bool ok = node.time < from || node.time > to ||
              allowed(node.key.location);
    alpha[static_cast<std::size_t>(id)] =
        ok ? node.source_probability : 0.0;
  }
  for (Timestamp t = 0; t + 1 < graph.length(); ++t) {
    for (NodeId id : graph.NodesAt(t)) {
      double mass = alpha[static_cast<std::size_t>(id)];
      if (mass == 0.0) continue;
      for (const CtGraph::Edge& edge : graph.node(id).out_edges) {
        const CtGraph::Node& next = graph.node(edge.to);
        bool ok = next.time < from || next.time > to ||
                  allowed(next.key.location);
        if (ok) {
          alpha[static_cast<std::size_t>(edge.to)] +=
              mass * edge.probability;
        }
      }
    }
  }
  double total = 0.0;
  for (NodeId id : graph.TargetNodes()) {
    total += alpha[static_cast<std::size_t>(id)];
  }
  return std::clamp(total, 0.0, 1.0);
}

}  // namespace

double ProbabilityVisitedInWindow(const CtGraph& graph, LocationId location,
                                  Timestamp from, Timestamp to) {
  CheckWindow(graph, from, to);
  double avoided = MassOfConstrainedPaths(
      graph, from, to,
      [location](LocationId at) { return at != location; });
  return 1.0 - avoided;
}

double ExpectedTicksAtInWindow(const CtGraph& graph, LocationId location,
                               Timestamp from, Timestamp to) {
  CheckWindow(graph, from, to);
  std::vector<double> marginals = NodeMarginals(graph);
  double expected = 0.0;
  for (Timestamp t = from; t <= to; ++t) {
    for (NodeId id : graph.NodesAt(t)) {
      if (graph.node(id).key.location == location) {
        expected += marginals[static_cast<std::size_t>(id)];
      }
    }
  }
  return expected;
}

double ProbabilityStayedThroughWindow(const CtGraph& graph,
                                      LocationId location, Timestamp from,
                                      Timestamp to) {
  CheckWindow(graph, from, to);
  return MassOfConstrainedPaths(
      graph, from, to,
      [location](LocationId at) { return at == location; });
}

}  // namespace rfidclean
