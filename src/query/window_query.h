#ifndef RFIDCLEAN_QUERY_WINDOW_QUERY_H_
#define RFIDCLEAN_QUERY_WINDOW_QUERY_H_

#include "core/ct_graph.h"

namespace rfidclean {

/// Time-anchored queries over a ct-graph. Trajectory patterns (§6.6) are
/// position-free ("at some point ..."); analysts also ask questions anchored
/// to wall-clock intervals — "was the visitor in the vault *between 14:02
/// and 14:05*?" — which these evaluators answer exactly on the conditioned
/// distribution.

/// Probability that the object was at `location` at *some* time point of
/// the inclusive window [from, to]. Computed as 1 - P(avoids `location`
/// throughout the window) by a forward pass that zeroes the avoided nodes
/// inside the window. O(nodes + edges).
double ProbabilityVisitedInWindow(const CtGraph& graph, LocationId location,
                                  Timestamp from, Timestamp to);

/// Expected number of time points of [from, to] (inclusive) the object
/// spent at `location` — the sum of the per-instant conditioned marginals.
double ExpectedTicksAtInWindow(const CtGraph& graph, LocationId location,
                               Timestamp from, Timestamp to);

/// Probability that the object stayed at `location` for the *entire*
/// inclusive window [from, to].
double ProbabilityStayedThroughWindow(const CtGraph& graph,
                                      LocationId location, Timestamp from,
                                      Timestamp to);

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_WINDOW_QUERY_H_
