#ifndef RFIDCLEAN_QUERY_STAY_QUERY_H_
#define RFIDCLEAN_QUERY_STAY_QUERY_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/ct_graph.h"
#include "query/marginals.h"

namespace rfidclean {

/// Evaluates *stay queries* over a ct-graph (§6.6): "where was the monitored
/// object at time τ?". The answer is the conditioned marginal distribution
/// over locations at τ: each location gets the total probability of the
/// represented trajectories whose τ-th step is at it.
///
/// Node marginals are computed once at construction; each query is then a
/// single pass over the τ-th layer. Templated over the structural graph
/// concept: instantiate with CtGraph (the StayQueryEvaluator alias) or with
/// store::CtGraphView for zero-copy evaluation straight off a mapped
/// ct-store; answers are bit-identical.
template <typename Graph>
class StayQueryEvaluatorT {
 public:
  /// `graph` must outlive the evaluator.
  explicit StayQueryEvaluatorT(const Graph& graph)
      : graph_(&graph), marginals_(NodeMarginalsOf(graph)) {}

  /// Distribution over locations at time `t` (only locations with positive
  /// probability, unordered). Probabilities sum to 1.
  std::vector<std::pair<LocationId, double>> Evaluate(Timestamp t) const {
    std::vector<std::pair<LocationId, double>> answer;
    for (NodeId id : graph_->NodesAt(t)) {
      LocationId location = graph_->LocationOf(id);
      double mass = marginals_[static_cast<std::size_t>(id)];
      auto it = std::find_if(answer.begin(), answer.end(),
                             [location](const auto& entry) {
                               return entry.first == location;
                             });
      if (it == answer.end()) {
        answer.emplace_back(location, mass);
      } else {
        it->second += mass;
      }
    }
    return answer;
  }

  /// Probability that the object was at `location` at time `t`.
  double Probability(Timestamp t, LocationId location) const {
    double mass = 0.0;
    for (NodeId id : graph_->NodesAt(t)) {
      if (graph_->LocationOf(id) == location) {
        mass += marginals_[static_cast<std::size_t>(id)];
      }
    }
    return mass;
  }

 private:
  const Graph* graph_;
  std::vector<double> marginals_;  // per node
};

using StayQueryEvaluator = StayQueryEvaluatorT<CtGraph>;

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_STAY_QUERY_H_
