#ifndef RFIDCLEAN_QUERY_STAY_QUERY_H_
#define RFIDCLEAN_QUERY_STAY_QUERY_H_

#include <utility>
#include <vector>

#include "core/ct_graph.h"

namespace rfidclean {

/// Evaluates *stay queries* over a ct-graph (§6.6): "where was the monitored
/// object at time τ?". The answer is the conditioned marginal distribution
/// over locations at τ: each location gets the total probability of the
/// represented trajectories whose τ-th step is at it.
///
/// Node marginals are computed once at construction; each query is then a
/// single pass over the τ-th layer.
class StayQueryEvaluator {
 public:
  /// `graph` must outlive the evaluator.
  explicit StayQueryEvaluator(const CtGraph& graph);

  /// Distribution over locations at time `t` (only locations with positive
  /// probability, unordered). Probabilities sum to 1.
  std::vector<std::pair<LocationId, double>> Evaluate(Timestamp t) const;

  /// Probability that the object was at `location` at time `t`.
  double Probability(Timestamp t, LocationId location) const;

 private:
  const CtGraph* graph_;
  std::vector<double> marginals_;  // per node
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_STAY_QUERY_H_
