#include "query/flow.h"

#include "common/check.h"
#include "query/marginals.h"

namespace rfidclean {

std::vector<double> ExpectedTransitionCounts(const CtGraph& graph,
                                             std::size_t num_locations) {
  std::vector<double> flow(num_locations * num_locations, 0.0);
  std::vector<double> marginals = NodeMarginals(graph);
  for (Timestamp t = 0; t + 1 < graph.length(); ++t) {
    for (NodeId id : graph.NodesAt(t)) {
      const CtGraph::Node& node = graph.node(id);
      RFID_CHECK_LT(static_cast<std::size_t>(node.key.location),
                    num_locations);
      double mass = marginals[static_cast<std::size_t>(id)];
      if (mass == 0.0) continue;
      for (const CtGraph::Edge& edge : node.out_edges) {
        LocationId to = graph.node(edge.to).key.location;
        flow[static_cast<std::size_t>(node.key.location) * num_locations +
             static_cast<std::size_t>(to)] += mass * edge.probability;
      }
    }
  }
  return flow;
}

}  // namespace rfidclean
