#ifndef RFIDCLEAN_QUERY_FLOW_H_
#define RFIDCLEAN_QUERY_FLOW_H_

#include <vector>

#include "core/ct_graph.h"

namespace rfidclean {

/// Movement analytics over the conditioned distribution: the expected
/// number of transitions between every pair of locations,
///
///   flow[a][b] = E[ #{ t : loc(t) = a ∧ loc(t+1) = b } ]
///              = Σ_edges(a→b) marginal(from) · p(edge),
///
/// indexed [from * num_locations + to]. Diagonal entries count expected
/// "stay" steps. Row/column sums relate to expected visit durations; the
/// off-diagonal part is the door-traffic matrix a facility analyst reads
/// off a cleaned dataset.
std::vector<double> ExpectedTransitionCounts(const CtGraph& graph,
                                             std::size_t num_locations);

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_FLOW_H_
