#include "query/pattern_matcher.h"

#include <algorithm>

#include "common/check.h"

namespace rfidclean {

namespace {

constexpr int kAnySymbol = -1;

void SetBit(std::vector<std::uint64_t>* bits, int index) {
  (*bits)[static_cast<std::size_t>(index) / 64] |=
      std::uint64_t{1} << (static_cast<std::size_t>(index) % 64);
}

bool Intersects(const std::vector<std::uint64_t>& a,
                const std::vector<std::uint64_t>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

}  // namespace

PatternMatcher::PatternMatcher(const Pattern& pattern) {
  RFID_CHECK(!pattern.items().empty());

  // Reduced alphabet: pattern locations + "other" (symbol 0).
  for (const PatternItem& item : pattern.items()) {
    if (item.wildcard) continue;
    bool known = false;
    for (const auto& [location, symbol] : symbol_of_) {
      if (location == item.location) {
        known = true;
        break;
      }
    }
    if (!known) {
      symbol_of_.emplace_back(item.location, num_symbols_++);
    }
  }
  std::sort(symbol_of_.begin(), symbol_of_.end());

  // Thompson-style construction with a "frontier" in place of epsilon
  // edges: the frontier holds the NFA states from which the next item's
  // first symbol can be consumed; wildcards extend it (they may expand to
  // the empty sequence), conditions replace it.
  auto new_state = [this]() {
    nfa_edges_.emplace_back();
    return static_cast<int>(nfa_edges_.size()) - 1;
  };
  int start = new_state();
  std::vector<int> frontier = {start};
  for (const PatternItem& item : pattern.items()) {
    if (item.wildcard) {
      int w = new_state();
      for (int f : frontier) {
        nfa_edges_[static_cast<std::size_t>(f)].push_back(
            NfaEdge{kAnySymbol, w});
      }
      nfa_edges_[static_cast<std::size_t>(w)].push_back(
          NfaEdge{kAnySymbol, w});
      frontier.push_back(w);
    } else {
      int symbol = SymbolOf(item.location);
      RFID_CHECK_GT(symbol, 0);
      int first = new_state();
      for (int f : frontier) {
        nfa_edges_[static_cast<std::size_t>(f)].push_back(
            NfaEdge{symbol, first});
      }
      int last = first;
      for (Timestamp k = 1; k < item.min_duration; ++k) {
        int next = new_state();
        nfa_edges_[static_cast<std::size_t>(last)].push_back(
            NfaEdge{symbol, next});
        last = next;
      }
      nfa_edges_[static_cast<std::size_t>(last)].push_back(
          NfaEdge{symbol, last});
      frontier = {last};
    }
  }
  std::size_t words = (nfa_edges_.size() + 63) / 64;
  nfa_accepting_.assign(words, 0);
  for (int f : frontier) SetBit(&nfa_accepting_, f);

  // Initial DFA state: the singleton {start}.
  StateSet initial(words, 0);
  SetBit(&initial, start);
  start_state_ = InternSubset(initial);
}

int PatternMatcher::SymbolOf(LocationId location) const {
  auto it = std::lower_bound(
      symbol_of_.begin(), symbol_of_.end(), location,
      [](const auto& entry, LocationId value) { return entry.first < value; });
  if (it != symbol_of_.end() && it->first == location) return it->second;
  return 0;  // "other"
}

int PatternMatcher::InternSubset(const StateSet& subset) {
  auto it = subset_ids_.find(subset);
  if (it != subset_ids_.end()) return it->second;
  int id = static_cast<int>(subsets_.size());
  subset_ids_.emplace(subset, id);
  subsets_.push_back(subset);
  dfa_transitions_.emplace_back(static_cast<std::size_t>(num_symbols_), -1);
  dfa_accepting_.push_back(Intersects(subset, nfa_accepting_));
  return id;
}

int PatternMatcher::Step(int state, LocationId location) {
  RFID_CHECK_GE(state, 0);
  RFID_CHECK_LT(static_cast<std::size_t>(state), dfa_transitions_.size());
  int symbol = SymbolOf(location);
  int& cached =
      dfa_transitions_[static_cast<std::size_t>(state)]
                      [static_cast<std::size_t>(symbol)];
  if (cached >= 0) return cached;

  const StateSet& current = subsets_[static_cast<std::size_t>(state)];
  StateSet next(current.size(), 0);
  for (std::size_t s = 0; s < nfa_edges_.size(); ++s) {
    if ((current[s / 64] & (std::uint64_t{1} << (s % 64))) == 0) continue;
    for (const NfaEdge& edge : nfa_edges_[s]) {
      if (edge.symbol == kAnySymbol || edge.symbol == symbol) {
        SetBit(&next, edge.target);
      }
    }
  }
  // The empty subset is a legal (dead, non-accepting) DFA state; interning
  // it uniformly keeps the stepping code branch-free.
  cached = InternSubset(next);
  return cached;
}

bool PatternMatcher::IsAccepting(int state) const {
  RFID_CHECK_GE(state, 0);
  RFID_CHECK_LT(static_cast<std::size_t>(state), dfa_accepting_.size());
  return dfa_accepting_[static_cast<std::size_t>(state)];
}

bool PatternMatcher::Matches(const Trajectory& trajectory) {
  int state = StartState();
  for (Timestamp t = 0; t < trajectory.length(); ++t) {
    state = Step(state, trajectory.At(t));
  }
  return IsAccepting(state);
}

}  // namespace rfidclean
