#ifndef RFIDCLEAN_QUERY_TOP_K_H_
#define RFIDCLEAN_QUERY_TOP_K_H_

#include <utility>
#include <vector>

#include "core/ct_graph.h"
#include "model/trajectory.h"

namespace rfidclean {

/// The `k` most probable valid trajectories under the conditioned
/// distribution, most probable first (fewer when the graph represents fewer
/// trajectories). Generalizes MostLikelyTrajectory via k-best dynamic
/// programming over the layered DAG (each graph node keeps its k best
/// prefixes with back-pointers); every path corresponds to a distinct
/// trajectory, so no deduplication is needed. Log-space scores avoid
/// underflow. Cost O((nodes + edges) · k log k).
///
/// A forensic staple: "show me the three most plausible reconstructions
/// and how much more likely the first is than the rest."
std::vector<std::pair<Trajectory, double>> TopKTrajectories(
    const CtGraph& graph, std::size_t k);

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_TOP_K_H_
