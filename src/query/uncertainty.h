#ifndef RFIDCLEAN_QUERY_UNCERTAINTY_H_
#define RFIDCLEAN_QUERY_UNCERTAINTY_H_

#include <vector>

#include "core/ct_graph.h"

namespace rfidclean {

/// Uncertainty diagnostics of a conditioned trajectory distribution. These
/// quantify how much ambiguity the cleaning left — the paper's motivation
/// rendered measurable: compare the same readings under DU vs DU+LT+TT and
/// watch the entropy drop.

/// Shannon entropy (bits) of the conditioned location marginal at each time
/// point: profile[t] = H(location at t). Zero where the position is certain.
std::vector<double> LocationEntropyProfile(const CtGraph& graph);

/// Shannon entropy (bits) of the full conditioned *trajectory* distribution
/// H(T) = -Σ_t p(t) log2 p(t), computed exactly in one pass without
/// enumeration: by the chain rule over the graph's layered factorization,
/// H(T) = H(source) + Σ_n P(n) · H(out-edges of n),
/// where P(n) is the node marginal. 2^H(T) is the "effective number of
/// trajectories" the distribution still hesitates between.
double TrajectoryEntropy(const CtGraph& graph);

/// 2^TrajectoryEntropy — effective number of valid interpretations.
double EffectiveTrajectories(const CtGraph& graph);

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_UNCERTAINTY_H_
