#ifndef RFIDCLEAN_QUERY_TRAJECTORY_QUERY_H_
#define RFIDCLEAN_QUERY_TRAJECTORY_QUERY_H_

#include "core/ct_graph.h"
#include "query/pattern.h"

namespace rfidclean {

/// Evaluates a *trajectory query* over a ct-graph (§6.6): the probability
/// that the monitored object's trajectory matches `pattern`, i.e. the sum of
/// the conditioned probabilities of the represented trajectories accepted by
/// the pattern. The probabilistic answer is then (yes: p, no: 1 - p).
///
/// Implementation: dynamic programming over (graph node, DFA state) pairs —
/// the mass of prefix paths ending at the node with the pattern automaton in
/// that state. Determinism of PatternMatcher guarantees each path is counted
/// exactly once. Cost O((nodes + edges) · active states).
double EvaluateTrajectoryQuery(const CtGraph& graph, const Pattern& pattern);

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_TRAJECTORY_QUERY_H_
