#include "query/sampler.h"

#include "common/check.h"

namespace rfidclean {

namespace {

/// Roulette pick over probabilities that sum to 1 (within drift).
template <typename Container, typename Prob>
std::size_t Pick(const Container& entries, Prob prob, Rng& rng) {
  RFID_CHECK(!entries.empty());
  double target = rng.UniformDouble();
  double acc = 0.0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    acc += prob(entries[i]);
    if (target < acc) return i;
  }
  return entries.size() - 1;  // Floating-point slack.
}

}  // namespace

TrajectorySampler::TrajectorySampler(const CtGraph& graph) : graph_(&graph) {}

Trajectory TrajectorySampler::Sample(Rng& rng) const {
  const std::vector<NodeId>& sources = graph_->SourceNodes();
  std::size_t pick = Pick(
      sources,
      [this](NodeId id) { return graph_->node(id).source_probability; }, rng);
  NodeId current = sources[pick];
  Trajectory trajectory;
  trajectory.Append(graph_->node(current).key.location);
  while (graph_->node(current).time + 1 < graph_->length()) {
    const auto& edges = graph_->node(current).out_edges;
    std::size_t e = Pick(
        edges, [](const CtGraph::Edge& edge) { return edge.probability; },
        rng);
    current = edges[e].to;
    trajectory.Append(graph_->node(current).key.location);
  }
  return trajectory;
}

}  // namespace rfidclean
