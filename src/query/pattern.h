#ifndef RFIDCLEAN_QUERY_PATTERN_H_
#define RFIDCLEAN_QUERY_PATTERN_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "map/building.h"
#include "model/reading.h"

namespace rfidclean {

/// One element of a trajectory-query pattern (§6.6): either the wildcard
/// `?` (any, possibly empty, sequence of locations) or a location condition
/// `l[n]` (a stay at l of at least n consecutive time points; plain `l`
/// means n = 1).
struct PatternItem {
  bool wildcard = false;
  LocationId location = kInvalidLocation;  // Condition items only.
  Timestamp min_duration = 1;              // Condition items only, >= 1.

  static PatternItem Wildcard() { return PatternItem{true, kInvalidLocation, 1}; }
  static PatternItem Condition(LocationId location,
                               Timestamp min_duration = 1) {
    return PatternItem{false, location, min_duration};
  }
};

/// A trajectory-query pattern: a sequence of items whose expansions,
/// concatenated, must produce exactly the location sequence of the
/// trajectory. For instance "? A[3] ? B[2] ?" asks whether the object at
/// some point stayed at A for at least 3 ticks and later at B for at least
/// 2 ticks.
class Pattern {
 public:
  /// Maps a location name to its id (kInvalidLocation when unknown).
  using NameResolver = std::function<LocationId(std::string_view)>;

  Pattern() = default;
  explicit Pattern(std::vector<PatternItem> items)
      : items_(std::move(items)) {}

  /// Parses the textual form: whitespace-separated tokens, each either `?`
  /// or `Name` or `Name[n]` with n >= 1.
  static Result<Pattern> Parse(std::string_view text,
                               const NameResolver& resolver);

  /// Convenience overload resolving names against a building's locations.
  static Result<Pattern> Parse(std::string_view text,
                               const Building& building);

  const std::vector<PatternItem>& items() const { return items_; }

  /// Number of condition (non-wildcard) items — the paper's query length.
  std::size_t NumConditions() const;

  /// Textual form, e.g. "? L3[2] ?", using "L<id>" names.
  std::string ToString() const;

 private:
  std::vector<PatternItem> items_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_PATTERN_H_
