#include "query/trajectory_query.h"

#include <vector>

#include "query/pattern_matcher.h"

namespace rfidclean {

namespace {

/// Sparse per-node map from DFA state to accumulated probability mass.
/// Queries touch very few states per node.
struct StateMass {
  int state = 0;
  double mass = 0.0;

  friend bool operator==(const StateMass&, const StateMass&) = default;
};

using NodeStates = std::vector<StateMass>;

void Accumulate(NodeStates* states, int state, double mass) {
  for (StateMass& entry : *states) {
    if (entry.state == state) {
      entry.mass += mass;
      return;
    }
  }
  states->push_back(StateMass{state, mass});
}

}  // namespace

double EvaluateTrajectoryQuery(const CtGraph& graph, const Pattern& pattern) {
  PatternMatcher matcher(pattern);
  std::vector<NodeStates> masses(graph.NumNodes());

  for (NodeId id : graph.SourceNodes()) {
    const CtGraph::Node& node = graph.node(id);
    int state = matcher.Step(matcher.StartState(), node.key.location);
    Accumulate(&masses[static_cast<std::size_t>(id)], state,
               node.source_probability);
  }
  for (Timestamp t = 0; t + 1 < graph.length(); ++t) {
    for (NodeId id : graph.NodesAt(t)) {
      NodeStates& current = masses[static_cast<std::size_t>(id)];
      if (current.empty()) continue;
      for (const CtGraph::Edge& edge : graph.node(id).out_edges) {
        LocationId next_location = graph.node(edge.to).key.location;
        NodeStates& next = masses[static_cast<std::size_t>(edge.to)];
        for (const StateMass& entry : current) {
          int state = matcher.Step(entry.state, next_location);
          Accumulate(&next, state, entry.mass * edge.probability);
        }
      }
      current.clear();
      current.shrink_to_fit();
    }
  }
  double probability = 0.0;
  for (NodeId id : graph.TargetNodes()) {
    for (const StateMass& entry : masses[static_cast<std::size_t>(id)]) {
      if (matcher.IsAccepting(entry.state)) probability += entry.mass;
    }
  }
  // Clamp floating-point drift.
  if (probability < 0.0) probability = 0.0;
  if (probability > 1.0) probability = 1.0;
  return probability;
}

}  // namespace rfidclean
