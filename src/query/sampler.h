#ifndef RFIDCLEAN_QUERY_SAMPLER_H_
#define RFIDCLEAN_QUERY_SAMPLER_H_

#include "common/rng.h"
#include "core/ct_graph.h"
#include "model/trajectory.h"

namespace rfidclean {

/// Draws valid trajectories from the conditioned distribution represented
/// by a ct-graph: pick a source node by p_N, then follow outgoing edges by
/// p_E. Every sample is valid by construction — the point made in §7 about
/// using ct-graphs as a basis for "sampling under constraints" with no
/// rejection loop.
class TrajectorySampler {
 public:
  /// `graph` must outlive the sampler.
  explicit TrajectorySampler(const CtGraph& graph);

  /// One sample; cost O(length · max out-degree).
  Trajectory Sample(Rng& rng) const;

 private:
  const CtGraph* graph_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_SAMPLER_H_
