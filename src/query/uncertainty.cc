#include "query/uncertainty.h"

#include <cmath>
#include <unordered_map>

#include "query/marginals.h"
#include "query/stay_query.h"

namespace rfidclean {

namespace {

double EntropyBits(const std::vector<double>& probabilities) {
  double entropy = 0.0;
  for (double p : probabilities) {
    if (p > 0.0) entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace

std::vector<double> LocationEntropyProfile(const CtGraph& graph) {
  StayQueryEvaluator evaluator(graph);
  std::vector<double> profile(static_cast<std::size_t>(graph.length()));
  std::vector<double> probabilities;
  for (Timestamp t = 0; t < graph.length(); ++t) {
    probabilities.clear();
    for (const auto& [location, probability] : evaluator.Evaluate(t)) {
      probabilities.push_back(probability);
    }
    profile[static_cast<std::size_t>(t)] = EntropyBits(probabilities);
  }
  return profile;
}

double TrajectoryEntropy(const CtGraph& graph) {
  std::vector<double> marginals = NodeMarginals(graph);
  std::vector<double> probabilities;
  for (NodeId id : graph.SourceNodes()) {
    probabilities.push_back(graph.node(id).source_probability);
  }
  double entropy = EntropyBits(probabilities);
  for (Timestamp t = 0; t + 1 < graph.length(); ++t) {
    for (NodeId id : graph.NodesAt(t)) {
      double mass = marginals[static_cast<std::size_t>(id)];
      if (mass <= 0.0) continue;
      probabilities.clear();
      for (const CtGraph::Edge& edge : graph.node(id).out_edges) {
        probabilities.push_back(edge.probability);
      }
      entropy += mass * EntropyBits(probabilities);
    }
  }
  return entropy;
}

double EffectiveTrajectories(const CtGraph& graph) {
  return std::exp2(TrajectoryEntropy(graph));
}

}  // namespace rfidclean
