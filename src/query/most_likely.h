#ifndef RFIDCLEAN_QUERY_MOST_LIKELY_H_
#define RFIDCLEAN_QUERY_MOST_LIKELY_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/ct_graph.h"
#include "model/trajectory.h"

namespace rfidclean {

/// The single most probable valid trajectory under the conditioned
/// distribution, with its probability — max-product (Viterbi) dynamic
/// programming over the ct-graph. Log-space scores keep hour-long
/// trajectories away from underflow. Ties are broken toward the earlier
/// node in layer order (deterministic).
///
/// This is the cleaned counterpart of UncleanedModel::MostLikelyTrajectory:
/// the argmax over *valid* trajectories of p*(t | Θ ∧ IC) instead of the
/// per-instant independent argmax (which is usually not even valid).
///
/// Templated over the structural graph concept so an owning CtGraph and a
/// zero-copy store::CtGraphView yield bit-identical answers (same visit
/// order, same float operations).
template <typename Graph>
std::pair<Trajectory, double> MostLikelyTrajectoryOf(const Graph& graph) {
  RFID_CHECK_GT(graph.length(), 0);
  constexpr double kMinusInfinity = -std::numeric_limits<double>::infinity();
  std::vector<double> best(graph.NumNodes(), kMinusInfinity);
  std::vector<NodeId> parent(graph.NumNodes(), kInvalidNode);

  for (NodeId id : graph.SourceNodes()) {
    best[static_cast<std::size_t>(id)] =
        std::log(graph.SourceProbability(id));
  }
  for (Timestamp t = 0; t + 1 < graph.length(); ++t) {
    for (NodeId id : graph.NodesAt(t)) {
      double score = best[static_cast<std::size_t>(id)];
      if (score == kMinusInfinity) continue;
      for (const auto& edge : graph.OutEdges(id)) {
        double candidate = score + std::log(edge.probability);
        if (candidate > best[static_cast<std::size_t>(edge.to)]) {
          best[static_cast<std::size_t>(edge.to)] = candidate;
          parent[static_cast<std::size_t>(edge.to)] = id;
        }
      }
    }
  }

  NodeId argmax = kInvalidNode;
  double max_score = kMinusInfinity;
  for (NodeId id : graph.TargetNodes()) {
    if (best[static_cast<std::size_t>(id)] > max_score) {
      max_score = best[static_cast<std::size_t>(id)];
      argmax = id;
    }
  }
  RFID_CHECK_NE(argmax, kInvalidNode);

  std::vector<LocationId> reversed;
  for (NodeId id = argmax; id != kInvalidNode;
       id = parent[static_cast<std::size_t>(id)]) {
    reversed.push_back(graph.LocationOf(id));
  }
  std::reverse(reversed.begin(), reversed.end());
  return {Trajectory(std::move(reversed)), std::exp(max_score)};
}

std::pair<Trajectory, double> MostLikelyTrajectory(const CtGraph& graph);

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_MOST_LIKELY_H_
