#ifndef RFIDCLEAN_QUERY_MOST_LIKELY_H_
#define RFIDCLEAN_QUERY_MOST_LIKELY_H_

#include <utility>

#include "core/ct_graph.h"
#include "model/trajectory.h"

namespace rfidclean {

/// The single most probable valid trajectory under the conditioned
/// distribution, with its probability — max-product (Viterbi) dynamic
/// programming over the ct-graph. Log-space scores keep hour-long
/// trajectories away from underflow. Ties are broken toward the earlier
/// node in layer order (deterministic).
///
/// This is the cleaned counterpart of UncleanedModel::MostLikelyTrajectory:
/// the argmax over *valid* trajectories of p*(t | Θ ∧ IC) instead of the
/// per-instant independent argmax (which is usually not even valid).
std::pair<Trajectory, double> MostLikelyTrajectory(const CtGraph& graph);

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_MOST_LIKELY_H_
