#include "query/top_k.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rfidclean {

namespace {

/// One of a node's k best prefixes: its log-probability and the
/// back-pointer (predecessor node, rank within that node's list).
struct Prefix {
  double log_probability = 0.0;
  NodeId parent = kInvalidNode;
  int parent_rank = -1;
};

bool BetterPrefix(const Prefix& a, const Prefix& b) {
  return a.log_probability > b.log_probability;
}

}  // namespace

std::vector<std::pair<Trajectory, double>> TopKTrajectories(
    const CtGraph& graph, std::size_t k) {
  RFID_CHECK_GT(k, 0u);
  std::vector<std::vector<Prefix>> best(graph.NumNodes());

  for (NodeId id : graph.SourceNodes()) {
    best[static_cast<std::size_t>(id)].push_back(
        Prefix{std::log(graph.node(id).source_probability), kInvalidNode,
               -1});
  }
  for (Timestamp t = 0; t + 1 < graph.length(); ++t) {
    for (NodeId id : graph.NodesAt(t)) {
      const std::vector<Prefix>& prefixes =
          best[static_cast<std::size_t>(id)];
      if (prefixes.empty()) continue;
      for (const CtGraph::Edge& edge : graph.node(id).out_edges) {
        std::vector<Prefix>& target =
            best[static_cast<std::size_t>(edge.to)];
        double step = std::log(edge.probability);
        for (int rank = 0; rank < static_cast<int>(prefixes.size());
             ++rank) {
          Prefix candidate{
              prefixes[static_cast<std::size_t>(rank)].log_probability +
                  step,
              id, rank};
          if (target.size() < k) {
            target.push_back(candidate);
            std::push_heap(target.begin(), target.end(), BetterPrefix);
          } else if (BetterPrefix(candidate, target.front())) {
            std::pop_heap(target.begin(), target.end(), BetterPrefix);
            target.back() = candidate;
            std::push_heap(target.begin(), target.end(), BetterPrefix);
          } else {
            // The heap front is the worst kept prefix; since this node's
            // prefixes are sorted descending, later ranks only get worse.
            break;
          }
        }
      }
    }
    // Sort the next layer's lists descending so rank order is meaningful.
    for (NodeId id : graph.NodesAt(t + 1)) {
      std::vector<Prefix>& prefixes = best[static_cast<std::size_t>(id)];
      std::sort(prefixes.begin(), prefixes.end(), BetterPrefix);
    }
  }

  // Collect candidate endpoints at the target layer and keep the global k.
  struct Endpoint {
    double log_probability;
    NodeId node;
    int rank;
  };
  std::vector<Endpoint> endpoints;
  for (NodeId id : graph.TargetNodes()) {
    const std::vector<Prefix>& prefixes =
        best[static_cast<std::size_t>(id)];
    for (int rank = 0; rank < static_cast<int>(prefixes.size()); ++rank) {
      endpoints.push_back(
          Endpoint{prefixes[static_cast<std::size_t>(rank)].log_probability,
                   id, rank});
    }
  }
  std::sort(endpoints.begin(), endpoints.end(),
            [](const Endpoint& a, const Endpoint& b) {
              return a.log_probability > b.log_probability;
            });
  if (endpoints.size() > k) endpoints.resize(k);

  std::vector<std::pair<Trajectory, double>> out;
  for (const Endpoint& endpoint : endpoints) {
    std::vector<LocationId> reversed;
    NodeId node = endpoint.node;
    int rank = endpoint.rank;
    while (node != kInvalidNode) {
      reversed.push_back(graph.node(node).key.location);
      const Prefix& prefix =
          best[static_cast<std::size_t>(node)][static_cast<std::size_t>(
              rank)];
      node = prefix.parent;
      rank = prefix.parent_rank;
    }
    std::reverse(reversed.begin(), reversed.end());
    out.emplace_back(Trajectory(std::move(reversed)),
                     std::exp(endpoint.log_probability));
  }
  return out;
}

}  // namespace rfidclean
