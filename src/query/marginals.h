#ifndef RFIDCLEAN_QUERY_MARGINALS_H_
#define RFIDCLEAN_QUERY_MARGINALS_H_

#include <cstddef>
#include <vector>

#include "core/ct_graph.h"

namespace rfidclean {

/// Probability that a random valid trajectory (under the conditioned
/// distribution) passes through each node: α(source) = p_N(source),
/// α(n) = Σ_{(n',n)} α(n') · p_E(n', n). Because every non-target node's
/// outgoing PDF sums to 1, α(n) is exactly the node's marginal probability
/// (every prefix extends to a probability-1 set of futures), so each layer's
/// α values sum to 1.
///
/// Templated over the structural graph concept (length / NodesAt /
/// SourceNodes / OutEdges / SourceProbability) so it runs identically on
/// an owning CtGraph and a zero-copy store::CtGraphView; the accumulation
/// order is fixed by node/edge order, so both representations produce
/// bit-identical results.
template <typename Graph>
std::vector<double> NodeMarginalsOf(const Graph& graph) {
  std::vector<double> alpha(graph.NumNodes(), 0.0);
  for (NodeId id : graph.SourceNodes()) {
    alpha[static_cast<std::size_t>(id)] = graph.SourceProbability(id);
  }
  for (Timestamp t = 0; t + 1 < graph.length(); ++t) {
    for (NodeId id : graph.NodesAt(t)) {
      double mass = alpha[static_cast<std::size_t>(id)];
      if (mass == 0.0) continue;
      for (const auto& edge : graph.OutEdges(id)) {
        alpha[static_cast<std::size_t>(edge.to)] += mass * edge.probability;
      }
    }
  }
  return alpha;
}

std::vector<double> NodeMarginals(const CtGraph& graph);

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_MARGINALS_H_
