#ifndef RFIDCLEAN_QUERY_MARGINALS_H_
#define RFIDCLEAN_QUERY_MARGINALS_H_

#include <vector>

#include "core/ct_graph.h"

namespace rfidclean {

/// Probability that a random valid trajectory (under the conditioned
/// distribution) passes through each node: α(source) = p_N(source),
/// α(n) = Σ_{(n',n)} α(n') · p_E(n', n). Because every non-target node's
/// outgoing PDF sums to 1, α(n) is exactly the node's marginal probability
/// (every prefix extends to a probability-1 set of futures), so each layer's
/// α values sum to 1.
std::vector<double> NodeMarginals(const CtGraph& graph);

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_MARGINALS_H_
