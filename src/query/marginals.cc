#include "query/marginals.h"

namespace rfidclean {

std::vector<double> NodeMarginals(const CtGraph& graph) {
  std::vector<double> alpha(graph.NumNodes(), 0.0);
  for (NodeId id : graph.SourceNodes()) {
    alpha[static_cast<std::size_t>(id)] =
        graph.node(id).source_probability;
  }
  for (Timestamp t = 0; t + 1 < graph.length(); ++t) {
    for (NodeId id : graph.NodesAt(t)) {
      double mass = alpha[static_cast<std::size_t>(id)];
      if (mass == 0.0) continue;
      for (const CtGraph::Edge& edge : graph.node(id).out_edges) {
        alpha[static_cast<std::size_t>(edge.to)] += mass * edge.probability;
      }
    }
  }
  return alpha;
}

}  // namespace rfidclean
