#include "query/marginals.h"

namespace rfidclean {

std::vector<double> NodeMarginals(const CtGraph& graph) {
  return NodeMarginalsOf(graph);
}

}  // namespace rfidclean
