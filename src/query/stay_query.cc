#include "query/stay_query.h"

namespace rfidclean {

// The CtGraph instantiation most callers use; keeps its code out of every
// including TU.
template class StayQueryEvaluatorT<CtGraph>;

}  // namespace rfidclean
