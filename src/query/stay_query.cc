#include "query/stay_query.h"

#include <algorithm>

#include "query/marginals.h"

namespace rfidclean {

StayQueryEvaluator::StayQueryEvaluator(const CtGraph& graph)
    : graph_(&graph), marginals_(NodeMarginals(graph)) {}

std::vector<std::pair<LocationId, double>> StayQueryEvaluator::Evaluate(
    Timestamp t) const {
  std::vector<std::pair<LocationId, double>> answer;
  for (NodeId id : graph_->NodesAt(t)) {
    LocationId location = graph_->node(id).key.location;
    double mass = marginals_[static_cast<std::size_t>(id)];
    auto it = std::find_if(answer.begin(), answer.end(),
                           [location](const auto& entry) {
                             return entry.first == location;
                           });
    if (it == answer.end()) {
      answer.emplace_back(location, mass);
    } else {
      it->second += mass;
    }
  }
  return answer;
}

double StayQueryEvaluator::Probability(Timestamp t,
                                       LocationId location) const {
  double mass = 0.0;
  for (NodeId id : graph_->NodesAt(t)) {
    if (graph_->node(id).key.location == location) {
      mass += marginals_[static_cast<std::size_t>(id)];
    }
  }
  return mass;
}

}  // namespace rfidclean
