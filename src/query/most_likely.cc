#include "query/most_likely.h"

namespace rfidclean {

std::pair<Trajectory, double> MostLikelyTrajectory(const CtGraph& graph) {
  return MostLikelyTrajectoryOf(graph);
}

}  // namespace rfidclean
