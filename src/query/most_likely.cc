#include "query/most_likely.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace rfidclean {

std::pair<Trajectory, double> MostLikelyTrajectory(const CtGraph& graph) {
  RFID_CHECK_GT(graph.length(), 0);
  constexpr double kMinusInfinity = -std::numeric_limits<double>::infinity();
  std::vector<double> best(graph.NumNodes(), kMinusInfinity);
  std::vector<NodeId> parent(graph.NumNodes(), kInvalidNode);

  for (NodeId id : graph.SourceNodes()) {
    best[static_cast<std::size_t>(id)] =
        std::log(graph.node(id).source_probability);
  }
  for (Timestamp t = 0; t + 1 < graph.length(); ++t) {
    for (NodeId id : graph.NodesAt(t)) {
      double score = best[static_cast<std::size_t>(id)];
      if (score == kMinusInfinity) continue;
      for (const CtGraph::Edge& edge : graph.node(id).out_edges) {
        double candidate = score + std::log(edge.probability);
        if (candidate > best[static_cast<std::size_t>(edge.to)]) {
          best[static_cast<std::size_t>(edge.to)] = candidate;
          parent[static_cast<std::size_t>(edge.to)] = id;
        }
      }
    }
  }

  NodeId argmax = kInvalidNode;
  double max_score = kMinusInfinity;
  for (NodeId id : graph.TargetNodes()) {
    if (best[static_cast<std::size_t>(id)] > max_score) {
      max_score = best[static_cast<std::size_t>(id)];
      argmax = id;
    }
  }
  RFID_CHECK_NE(argmax, kInvalidNode);

  std::vector<LocationId> reversed;
  for (NodeId id = argmax; id != kInvalidNode;
       id = parent[static_cast<std::size_t>(id)]) {
    reversed.push_back(graph.node(id).key.location);
  }
  std::reverse(reversed.begin(), reversed.end());
  return {Trajectory(std::move(reversed)), std::exp(max_score)};
}

}  // namespace rfidclean
