#ifndef RFIDCLEAN_QUERY_PATTERN_MATCHER_H_
#define RFIDCLEAN_QUERY_PATTERN_MATCHER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "model/trajectory.h"
#include "query/pattern.h"

namespace rfidclean {

/// Compiles a Pattern into a finite automaton over location sequences and
/// exposes a *deterministic* stepping interface (lazy subset construction
/// over the Thompson NFA). Determinism is what lets the trajectory-query
/// evaluator sum path probabilities without double counting: every location
/// sequence is in exactly one DFA state after each prefix.
///
/// The input alphabet is reduced to the locations named by the pattern plus
/// a single "other" symbol, so the automaton is independent of the total
/// number of locations.
class PatternMatcher {
 public:
  explicit PatternMatcher(const Pattern& pattern);

  /// DFA state before any symbol is consumed.
  int StartState() const { return start_state_; }

  /// Consumes one location. Lazily materializes missing transitions.
  int Step(int state, LocationId location);

  /// True when a sequence ending in `state` matches the pattern.
  bool IsAccepting(int state) const;

  /// Runs the automaton over a full trajectory.
  bool Matches(const Trajectory& trajectory);

  /// Materialized DFA states so far (diagnostics).
  std::size_t NumDfaStates() const { return dfa_transitions_.size(); }

  std::size_t NumNfaStates() const { return nfa_edges_.size(); }

 private:
  using StateSet = std::vector<std::uint64_t>;  // bitset over NFA states

  /// Symbol index of a location: pattern locations get dense indices,
  /// everything else maps to the shared "other" symbol.
  int SymbolOf(LocationId location) const;

  int InternSubset(const StateSet& subset);

  struct NfaEdge {
    int symbol = 0;  // -1 = any
    int target = 0;
  };

  int num_symbols_ = 1;  // including "other"
  std::vector<std::pair<LocationId, int>> symbol_of_;  // sorted by location
  std::vector<std::vector<NfaEdge>> nfa_edges_;        // per NFA state
  StateSet nfa_accepting_;

  int start_state_ = 0;
  std::map<StateSet, int> subset_ids_;
  std::vector<StateSet> subsets_;
  std::vector<std::vector<int>> dfa_transitions_;  // [state][symbol], -1 lazy
  std::vector<bool> dfa_accepting_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_QUERY_PATTERN_MATCHER_H_
