#include "query/pattern.h"

#include <charconv>
#include <limits>
#include <system_error>

#include "common/strings.h"

namespace rfidclean {

Result<Pattern> Pattern::Parse(std::string_view text,
                               const NameResolver& resolver) {
  std::vector<PatternItem> items;
  std::size_t i = 0;
  auto is_space = [](char c) { return c == ' ' || c == '\t'; };
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    if (i >= text.size()) break;
    std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    std::string_view token = text.substr(start, i - start);
    if (token == "?") {
      items.push_back(PatternItem::Wildcard());
      continue;
    }
    std::string_view name = token;
    Timestamp min_duration = 1;
    std::size_t bracket = token.find('[');
    if (bracket != std::string_view::npos) {
      if (token.back() != ']' || bracket + 2 > token.size()) {
        return InvalidArgumentError(
            StrFormat("malformed condition '%.*s'",
                      static_cast<int>(token.size()), token.data()));
      }
      name = token.substr(0, bracket);
      const std::string_view digits =
          token.substr(bracket + 1, token.size() - bracket - 2);
      // Strict parse, mirroring the CLI's --jobs handling: full
      // consumption required, and out-of-range counts are rejected
      // instead of wrapping through a silent narrowing cast (strtol used
      // to saturate at LONG_MAX unnoticed and then truncate to 32 bits).
      long long value = 0;
      const char* const digits_end = digits.data() + digits.size();
      const std::from_chars_result parsed =
          std::from_chars(digits.data(), digits_end, value);
      if (parsed.ec == std::errc::result_out_of_range ||
          (parsed.ec == std::errc() && parsed.ptr == digits_end &&
           value > static_cast<long long>(
               std::numeric_limits<Timestamp>::max()))) {
        return InvalidArgumentError(
            StrFormat("duration out of range in '%.*s'",
                      static_cast<int>(token.size()), token.data()));
      }
      if (parsed.ec != std::errc() || parsed.ptr != digits_end ||
          value < 1) {
        return InvalidArgumentError(
            StrFormat("invalid duration in '%.*s'",
                      static_cast<int>(token.size()), token.data()));
      }
      min_duration = static_cast<Timestamp>(value);
    }
    LocationId location = resolver(name);
    if (location == kInvalidLocation) {
      return NotFoundError(StrFormat("unknown location '%.*s'",
                                     static_cast<int>(name.size()),
                                     name.data()));
    }
    items.push_back(PatternItem::Condition(location, min_duration));
  }
  if (items.empty()) {
    return InvalidArgumentError("empty pattern");
  }
  return Pattern(std::move(items));
}

Result<Pattern> Pattern::Parse(std::string_view text,
                               const Building& building) {
  return Parse(text, [&building](std::string_view name) {
    return building.FindLocationByName(name);
  });
}

std::size_t Pattern::NumConditions() const {
  std::size_t count = 0;
  for (const PatternItem& item : items_) {
    if (!item.wildcard) ++count;
  }
  return count;
}

std::string Pattern::ToString() const {
  std::string out;
  for (const PatternItem& item : items_) {
    if (!out.empty()) out += ' ';
    if (item.wildcard) {
      out += '?';
    } else if (item.min_duration > 1) {
      out += StrFormat("L%d[%d]", item.location, item.min_duration);
    } else {
      out += StrFormat("L%d", item.location);
    }
  }
  return out;
}

}  // namespace rfidclean
