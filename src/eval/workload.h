#ifndef RFIDCLEAN_EVAL_WORKLOAD_H_
#define RFIDCLEAN_EVAL_WORKLOAD_H_

#include <vector>

#include "common/rng.h"
#include "map/building.h"
#include "model/reading.h"
#include "query/pattern.h"

namespace rfidclean {

/// Random time points for a stay-query workload (§6.6: 100 per trajectory).
std::vector<Timestamp> StayQueryWorkload(Timestamp trajectory_length,
                                         int count, Rng& rng);

/// One random trajectory query following §6.6: `num_conditions` locations
/// drawn uniformly from the map, each with a duration drawn from
/// {-1, 3, 5, 7, 9} (-1 meaning a bare `l` condition), separated and
/// surrounded by wildcards: "? l1[n1] ? ... ? lx[nx] ?".
Pattern RandomTrajectoryQuery(const Building& building, int num_conditions,
                              Rng& rng);

/// A workload of `count` trajectory queries whose condition counts are
/// drawn uniformly from {2, 3, 4} (§6.6: 50 per trajectory).
std::vector<Pattern> TrajectoryQueryWorkload(const Building& building,
                                             int count, Rng& rng);

}  // namespace rfidclean

#endif  // RFIDCLEAN_EVAL_WORKLOAD_H_
