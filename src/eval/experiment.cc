#include "eval/experiment.h"

#include <algorithm>

#include "baseline/uncleaned.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "core/builder.h"
#include "eval/accuracy.h"
#include "eval/workload.h"
#include "query/pattern_matcher.h"
#include "query/stay_query.h"
#include "query/trajectory_query.h"

namespace rfidclean {

namespace {

std::vector<const Dataset::Item*> SelectItems(const Dataset& dataset,
                                              Timestamp duration,
                                              int max_items) {
  std::vector<const Dataset::Item*> items =
      dataset.ItemsWithDuration(duration);
  if (static_cast<int>(items.size()) > max_items) {
    items.resize(static_cast<std::size_t>(max_items));
  }
  return items;
}

}  // namespace

std::vector<CleaningCostRow> RunCleaningCost(
    const Dataset& dataset, const std::vector<ConstraintFamilies>& families,
    const ExperimentLimits& limits) {
  std::vector<CleaningCostRow> rows;
  for (const ConstraintFamilies& family : families) {
    ConstraintSet constraints = dataset.MakeConstraints(family);
    CtGraphBuilder builder(constraints);
    for (Timestamp duration : dataset.options().durations_ticks) {
      auto items =
          SelectItems(dataset, duration, limits.max_items_per_duration);
      if (items.empty()) continue;
      CleaningCostRow row;
      row.dataset = dataset.options().name;
      row.families = ConstraintFamiliesLabel(family);
      row.duration_ticks = duration;
      row.trajectories = static_cast<int>(items.size());
      int successes = 0;
      for (const Dataset::Item* item : items) {
        BuildStats stats;
        Result<CtGraph> graph = builder.Build(item->lsequence, &stats);
        if (!graph.ok()) {
          // Genuinely unsatisfiable item: excluded from the averages, but
          // counted — silently narrowing the item pool skews comparisons.
          ++row.skipped_unsatisfiable;
          if (row.first_doomed_at < 0) row.first_doomed_at = stats.doomed_at;
          continue;
        }
        ++successes;
        row.avg_total_ms += stats.TotalMillis();
        row.avg_forward_ms += stats.forward_millis;
        row.avg_backward_ms += stats.backward_millis;
        row.avg_peak_nodes += static_cast<double>(stats.peak_nodes);
        row.avg_final_nodes += static_cast<double>(stats.final_nodes);
        row.avg_final_edges += static_cast<double>(stats.final_edges);
        row.avg_graph_bytes +=
            static_cast<double>(graph.value().ApproximateBytes());
      }
      // A cell where every item was skipped still surfaces (zero averages,
      // nonzero skip count) instead of vanishing from the report.
      if (successes == 0 && row.skipped_unsatisfiable == 0) continue;
      row.trajectories = successes;
      if (successes == 0) {
        rows.push_back(std::move(row));
        continue;
      }
      double n = static_cast<double>(successes);
      row.avg_total_ms /= n;
      row.avg_forward_ms /= n;
      row.avg_backward_ms /= n;
      row.avg_peak_nodes /= n;
      row.avg_final_nodes /= n;
      row.avg_final_edges /= n;
      row.avg_graph_bytes /= n;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<QueryTimeRow> RunQueryTime(
    const Dataset& dataset, const std::vector<ConstraintFamilies>& families,
    const ExperimentLimits& limits) {
  std::vector<QueryTimeRow> rows;
  for (const ConstraintFamilies& family : families) {
    ConstraintSet constraints = dataset.MakeConstraints(family);
    CtGraphBuilder builder(constraints);
    for (Timestamp duration : dataset.options().durations_ticks) {
      auto items =
          SelectItems(dataset, duration, limits.max_items_per_duration);
      if (items.empty()) continue;
      QueryTimeRow row;
      row.dataset = dataset.options().name;
      row.families = ConstraintFamiliesLabel(family);
      row.duration_ticks = duration;
      double stay_micros = 0.0;
      double pattern_micros = 0.0;
      std::size_t stay_count = 0;
      std::size_t pattern_count = 0;
      std::uint64_t stream = 0;
      for (const Dataset::Item* item : items) {
        Rng rng(limits.query_seed, stream++);
        BuildStats stats;
        Result<CtGraph> graph = builder.Build(item->lsequence, &stats);
        if (!graph.ok()) {
          ++row.skipped_unsatisfiable;
          if (row.first_doomed_at < 0) row.first_doomed_at = stats.doomed_at;
          continue;
        }
        std::vector<Timestamp> times = StayQueryWorkload(
            duration, limits.stay_queries_per_trajectory, rng);
        Stopwatch stopwatch;
        StayQueryEvaluator evaluator(graph.value());
        double sink = 0.0;
        for (Timestamp t : times) {
          sink += evaluator
                      .Evaluate(t)[0]
                      .second;  // Force full evaluation.
        }
        stay_micros += stopwatch.ElapsedMicros();
        stay_count += times.size();
        RFID_CHECK_GE(sink, 0.0);

        std::vector<Pattern> queries = TrajectoryQueryWorkload(
            dataset.building(), limits.trajectory_queries_per_trajectory,
            rng);
        stopwatch.Reset();
        for (const Pattern& pattern : queries) {
          sink += EvaluateTrajectoryQuery(graph.value(), pattern);
        }
        pattern_micros += stopwatch.ElapsedMicros();
        pattern_count += queries.size();
      }
      if (stay_count == 0 || pattern_count == 0) {
        // Surface an all-skipped cell instead of dropping it.
        if (row.skipped_unsatisfiable > 0) rows.push_back(std::move(row));
        continue;
      }
      row.avg_stay_micros = stay_micros / static_cast<double>(stay_count);
      row.avg_pattern_micros =
          pattern_micros / static_cast<double>(pattern_count);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<AccuracyRow> RunAccuracy(
    const Dataset& dataset, const std::vector<ConstraintFamilies>& families,
    const ExperimentLimits& limits, bool include_uncleaned_baseline) {
  std::vector<AccuracyRow> rows;

  // Shared workloads: the same queries are posed to every model so the
  // comparison isolates the effect of cleaning.
  struct ItemWorkload {
    const Dataset::Item* item;
    std::vector<Timestamp> stay_times;
    std::vector<Pattern> patterns;
    std::vector<bool> truth_matches;
  };
  std::vector<ItemWorkload> workloads;
  std::uint64_t stream = 0;
  for (Timestamp duration : dataset.options().durations_ticks) {
    for (const Dataset::Item* item :
         SelectItems(dataset, duration, limits.max_items_per_duration)) {
      Rng rng(limits.query_seed, stream++);
      ItemWorkload workload;
      workload.item = item;
      workload.stay_times = StayQueryWorkload(
          item->duration, limits.stay_queries_per_trajectory, rng);
      workload.patterns = TrajectoryQueryWorkload(
          dataset.building(), limits.trajectory_queries_per_trajectory, rng);
      for (const Pattern& pattern : workload.patterns) {
        PatternMatcher matcher(pattern);
        workload.truth_matches.push_back(
            matcher.Matches(item->ground_truth));
      }
      workloads.push_back(std::move(workload));
    }
  }
  RFID_CHECK(!workloads.empty());

  if (include_uncleaned_baseline) {
    AccuracyRow row;
    row.dataset = dataset.options().name;
    row.families = "uncleaned";
    double stay = 0.0;
    double pattern = 0.0;
    std::size_t pattern_count = 0;
    for (const ItemWorkload& workload : workloads) {
      UncleanedModel model(workload.item->lsequence);
      stay += UncleanedStayAccuracy(model, workload.item->ground_truth,
                                    workload.stay_times);
      for (std::size_t q = 0; q < workload.patterns.size(); ++q) {
        double yes = UncleanedTrajectoryQueryProbability(
            workload.item->lsequence, workload.patterns[q]);
        pattern += TrajectoryQueryAccuracy(yes, workload.truth_matches[q]);
        ++pattern_count;
      }
    }
    row.stay_accuracy = stay / static_cast<double>(workloads.size());
    row.trajectory_accuracy =
        pattern / static_cast<double>(pattern_count);
    rows.push_back(std::move(row));
  }

  for (const ConstraintFamilies& family : families) {
    ConstraintSet constraints = dataset.MakeConstraints(family);
    CtGraphBuilder builder(constraints);
    AccuracyRow row;
    row.dataset = dataset.options().name;
    row.families = ConstraintFamiliesLabel(family);
    double stay = 0.0;
    double pattern = 0.0;
    std::size_t stay_count = 0;
    std::size_t pattern_count = 0;
    for (const ItemWorkload& workload : workloads) {
      BuildStats stats;
      Result<CtGraph> graph = builder.Build(workload.item->lsequence, &stats);
      if (!graph.ok()) {
        ++row.skipped_unsatisfiable;
        if (row.first_doomed_at < 0) row.first_doomed_at = stats.doomed_at;
        continue;
      }
      ++stay_count;
      StayQueryEvaluator evaluator(graph.value());
      stay += StayQueryAccuracy(evaluator, workload.item->ground_truth,
                                workload.stay_times);
      for (std::size_t q = 0; q < workload.patterns.size(); ++q) {
        double yes =
            EvaluateTrajectoryQuery(graph.value(), workload.patterns[q]);
        pattern += TrajectoryQueryAccuracy(yes, workload.truth_matches[q]);
        ++pattern_count;
      }
    }
    if (stay_count == 0 || pattern_count == 0) {
      // Surface an all-skipped family instead of dropping it.
      if (row.skipped_unsatisfiable > 0) rows.push_back(std::move(row));
      continue;
    }
    row.stay_accuracy = stay / static_cast<double>(stay_count);
    row.trajectory_accuracy =
        pattern / static_cast<double>(pattern_count);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<AccuracyByLengthRow> RunAccuracyByQueryLength(
    const Dataset& dataset, const ConstraintFamilies& families,
    const ExperimentLimits& limits) {
  ConstraintSet constraints = dataset.MakeConstraints(families);
  CtGraphBuilder builder(constraints);
  // Each ct-graph is built once and queried at every length.
  double accuracy[3] = {0.0, 0.0, 0.0};
  std::size_t count[3] = {0, 0, 0};
  int skipped = 0;
  Timestamp first_doomed_at = -1;
  std::uint64_t stream = 1000;
  for (Timestamp duration : dataset.options().durations_ticks) {
    for (const Dataset::Item* item :
         SelectItems(dataset, duration, limits.max_items_per_duration)) {
      Rng rng(limits.query_seed, stream++);
      BuildStats stats;
      Result<CtGraph> graph = builder.Build(item->lsequence, &stats);
      if (!graph.ok()) {
        ++skipped;
        if (first_doomed_at < 0) first_doomed_at = stats.doomed_at;
        continue;
      }
      for (int length = 2; length <= 4; ++length) {
        for (int q = 0; q < limits.trajectory_queries_per_trajectory; ++q) {
          Pattern pattern =
              RandomTrajectoryQuery(dataset.building(), length, rng);
          PatternMatcher matcher(pattern);
          double yes = EvaluateTrajectoryQuery(graph.value(), pattern);
          accuracy[length - 2] += TrajectoryQueryAccuracy(
              yes, matcher.Matches(item->ground_truth));
          ++count[length - 2];
        }
      }
    }
  }
  std::vector<AccuracyByLengthRow> rows;
  for (int length = 2; length <= 4; ++length) {
    RFID_CHECK_GT(count[length - 2], 0u);
    AccuracyByLengthRow row;
    row.dataset = dataset.options().name;
    row.families = ConstraintFamiliesLabel(families);
    row.query_length = length;
    row.trajectory_accuracy =
        accuracy[length - 2] / static_cast<double>(count[length - 2]);
    row.skipped_unsatisfiable = skipped;
    row.first_doomed_at = first_doomed_at;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace rfidclean
