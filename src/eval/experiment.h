#ifndef RFIDCLEAN_EVAL_EXPERIMENT_H_
#define RFIDCLEAN_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/inference.h"
#include "gen/dataset.h"

namespace rfidclean {

/// Workload sizes of the §6 experiments. The paper's full setting is
/// 25 trajectories per duration, 100 stay queries and 50 trajectory queries
/// per trajectory; quick runs scale max_items_per_duration down.
struct ExperimentLimits {
  int max_items_per_duration = 25;
  int stay_queries_per_trajectory = 100;
  int trajectory_queries_per_trajectory = 50;
  std::uint64_t query_seed = 7;
};

/// One row of the Fig. 8(a)/8(b) cleaning-cost experiment: averages over
/// the trajectories of one (dataset, constraint set, duration) cell.
struct CleaningCostRow {
  std::string dataset;
  std::string families;
  Timestamp duration_ticks = 0;
  int trajectories = 0;
  double avg_total_ms = 0.0;
  double avg_forward_ms = 0.0;
  double avg_backward_ms = 0.0;
  double avg_peak_nodes = 0.0;
  double avg_final_nodes = 0.0;
  double avg_final_edges = 0.0;
  double avg_graph_bytes = 0.0;  ///< The §6.7 memory metric.
  /// Items whose l-sequence the constraints ruled out entirely (the
  /// averages above cover only the satisfiable items). Silent loss of
  /// these items once skewed cross-family comparisons; now they are
  /// reported.
  int skipped_unsatisfiable = 0;
  /// Preflight diagnosis of the first skipped item: the first tick with no
  /// admissible candidate, or -1 when nothing was skipped (or the doom was
  /// only detectable dynamically).
  Timestamp first_doomed_at = -1;
};

/// Builds the ct-graph of every selected item under every requested
/// constraint family and reports per-cell averages.
std::vector<CleaningCostRow> RunCleaningCost(
    const Dataset& dataset, const std::vector<ConstraintFamilies>& families,
    const ExperimentLimits& limits);

/// One row of the Fig. 8(c) query-time experiment.
struct QueryTimeRow {
  std::string dataset;
  std::string families;
  Timestamp duration_ticks = 0;
  double avg_stay_micros = 0.0;     ///< Per stay query (marginals amortized).
  double avg_pattern_micros = 0.0;  ///< Per trajectory query.
  /// See CleaningCostRow: unsatisfiable items excluded from the averages.
  int skipped_unsatisfiable = 0;
  Timestamp first_doomed_at = -1;
};

std::vector<QueryTimeRow> RunQueryTime(
    const Dataset& dataset, const std::vector<ConstraintFamilies>& families,
    const ExperimentLimits& limits);

/// One row of the Fig. 9(a)/9(b) accuracy experiment, aggregated over all
/// durations of a dataset. families == "uncleaned" is the no-cleaning
/// baseline.
struct AccuracyRow {
  std::string dataset;
  std::string families;
  double stay_accuracy = 0.0;
  double trajectory_accuracy = 0.0;
  /// See CleaningCostRow: unsatisfiable items excluded from the averages.
  int skipped_unsatisfiable = 0;
  Timestamp first_doomed_at = -1;
};

std::vector<AccuracyRow> RunAccuracy(
    const Dataset& dataset, const std::vector<ConstraintFamilies>& families,
    const ExperimentLimits& limits, bool include_uncleaned_baseline = true);

/// One row of the Fig. 9(c) experiment: trajectory-query accuracy bucketed
/// by the number of location conditions in the query (2, 3 or 4).
struct AccuracyByLengthRow {
  std::string dataset;
  std::string families;
  int query_length = 0;
  double trajectory_accuracy = 0.0;
  /// See CleaningCostRow: unsatisfiable items excluded from the averages
  /// (identical across the length buckets of one run).
  int skipped_unsatisfiable = 0;
  Timestamp first_doomed_at = -1;
};

std::vector<AccuracyByLengthRow> RunAccuracyByQueryLength(
    const Dataset& dataset, const ConstraintFamilies& families,
    const ExperimentLimits& limits);

}  // namespace rfidclean

#endif  // RFIDCLEAN_EVAL_EXPERIMENT_H_
