#ifndef RFIDCLEAN_EVAL_ACCURACY_H_
#define RFIDCLEAN_EVAL_ACCURACY_H_

#include <vector>

#include "baseline/uncleaned.h"
#include "model/lsequence.h"
#include "model/trajectory.h"
#include "query/pattern.h"
#include "query/stay_query.h"

namespace rfidclean {

/// Accuracy of a stay-query answer (§6.6): the probability the answer
/// assigns to the location the object actually occupied. Returns the mean
/// over the workload's time points.
double StayQueryAccuracy(const StayQueryEvaluator& evaluator,
                         const Trajectory& ground_truth,
                         const std::vector<Timestamp>& times);

/// Same metric computed on the uncleaned (per-instant independent)
/// interpretation — the before-cleaning baseline of Figure 9(a).
double UncleanedStayAccuracy(const UncleanedModel& model,
                             const Trajectory& ground_truth,
                             const std::vector<Timestamp>& times);

/// Accuracy of one trajectory-query answer: p if the ground-truth trajectory
/// matches the pattern, 1 - p otherwise, where p is the probability of
/// "yes" under the evaluated model.
double TrajectoryQueryAccuracy(double yes_probability, bool truth_matches);

/// Probability that the pattern matches under the *uncleaned* independent
/// interpretation of the l-sequence: the same DFA dynamic program as the
/// ct-graph evaluator, but over the per-instant candidate distributions
/// (every location transition considered possible).
double UncleanedTrajectoryQueryProbability(const LSequence& sequence,
                                           const Pattern& pattern);

}  // namespace rfidclean

#endif  // RFIDCLEAN_EVAL_ACCURACY_H_
