#include "eval/workload.h"

#include "common/check.h"

namespace rfidclean {

std::vector<Timestamp> StayQueryWorkload(Timestamp trajectory_length,
                                         int count, Rng& rng) {
  RFID_CHECK_GT(trajectory_length, 0);
  std::vector<Timestamp> times;
  times.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    times.push_back(static_cast<Timestamp>(
        rng.UniformIndex(static_cast<std::size_t>(trajectory_length))));
  }
  return times;
}

Pattern RandomTrajectoryQuery(const Building& building, int num_conditions,
                              Rng& rng) {
  RFID_CHECK_GE(num_conditions, 1);
  static constexpr int kDurations[] = {-1, 3, 5, 7, 9};
  std::vector<PatternItem> items;
  items.push_back(PatternItem::Wildcard());
  for (int i = 0; i < num_conditions; ++i) {
    LocationId location =
        static_cast<LocationId>(rng.UniformIndex(building.NumLocations()));
    int duration = kDurations[rng.UniformIndex(std::size(kDurations))];
    items.push_back(PatternItem::Condition(
        location, duration < 0 ? 1 : static_cast<Timestamp>(duration)));
    items.push_back(PatternItem::Wildcard());
  }
  return Pattern(std::move(items));
}

std::vector<Pattern> TrajectoryQueryWorkload(const Building& building,
                                             int count, Rng& rng) {
  std::vector<Pattern> queries;
  queries.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    int num_conditions = rng.UniformInt(2, 4);
    queries.push_back(RandomTrajectoryQuery(building, num_conditions, rng));
  }
  return queries;
}

}  // namespace rfidclean
