#include "eval/accuracy.h"

#include "common/check.h"
#include "query/pattern_matcher.h"

namespace rfidclean {

double StayQueryAccuracy(const StayQueryEvaluator& evaluator,
                         const Trajectory& ground_truth,
                         const std::vector<Timestamp>& times) {
  RFID_CHECK(!times.empty());
  double total = 0.0;
  for (Timestamp t : times) {
    total += evaluator.Probability(t, ground_truth.At(t));
  }
  return total / static_cast<double>(times.size());
}

double UncleanedStayAccuracy(const UncleanedModel& model,
                             const Trajectory& ground_truth,
                             const std::vector<Timestamp>& times) {
  RFID_CHECK(!times.empty());
  double total = 0.0;
  for (Timestamp t : times) {
    total += model.StayProbability(t, ground_truth.At(t));
  }
  return total / static_cast<double>(times.size());
}

double TrajectoryQueryAccuracy(double yes_probability, bool truth_matches) {
  return truth_matches ? yes_probability : 1.0 - yes_probability;
}

double UncleanedTrajectoryQueryProbability(const LSequence& sequence,
                                           const Pattern& pattern) {
  PatternMatcher matcher(pattern);
  // mass[s] = probability that a random independent interpretation's prefix
  // leaves the DFA in state s.
  std::vector<std::pair<int, double>> mass = {{matcher.StartState(), 1.0}};
  std::vector<std::pair<int, double>> next;
  for (Timestamp t = 0; t < sequence.length(); ++t) {
    next.clear();
    for (const auto& [state, probability] : mass) {
      for (const Candidate& candidate : sequence.CandidatesAt(t)) {
        int target = matcher.Step(state, candidate.location);
        double added = probability * candidate.probability;
        bool found = false;
        for (auto& [existing, total] : next) {
          if (existing == target) {
            total += added;
            found = true;
            break;
          }
        }
        if (!found) next.emplace_back(target, added);
      }
    }
    mass.swap(next);
  }
  double yes = 0.0;
  for (const auto& [state, probability] : mass) {
    if (matcher.IsAccepting(state)) yes += probability;
  }
  if (yes < 0.0) yes = 0.0;
  if (yes > 1.0) yes = 1.0;
  return yes;
}

}  // namespace rfidclean
