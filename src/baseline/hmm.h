#ifndef RFIDCLEAN_BASELINE_HMM_H_
#define RFIDCLEAN_BASELINE_HMM_H_

#include <vector>

#include "constraints/constraint_set.h"
#include "model/lsequence.h"

namespace rfidclean {

/// Forward-backward (HMM) smoothing baseline: what a practitioner would
/// typically build before reaching for constraint conditioning. States are
/// locations; the transition model allows staying or moving to any location
/// not forbidden by the DU constraints, with a fixed self-transition bias;
/// the per-instant emission score of location l at time t is its candidate
/// probability in the l-sequence. The smoother computes per-instant
/// posterior marginals.
///
/// Contrast with the ct-graph approach: the first-order Markov state cannot
/// express latency or traveling-time constraints (it remembers one step of
/// history), and the transition model is a modeling guess rather than a
/// hard validity condition — so mass still leaks onto trajectories the
/// constraints rule out. The difference is measured in
/// bench/baseline_comparison.
class HmmSmoother {
 public:
  struct Params {
    /// Probability mass given to staying put at each step; the remainder
    /// spreads uniformly over the DU-allowed moves.
    double self_transition = 0.8;
  };

  /// Derives the transition structure from the DU constraints in
  /// `constraints` (which must outlive the smoother).
  HmmSmoother(const ConstraintSet& constraints, const Params& params);
  explicit HmmSmoother(const ConstraintSet& constraints)
      : HmmSmoother(constraints, Params()) {}

  /// Posterior marginals over locations per time point
  /// (marginals[t][location], each row summing to 1).
  std::vector<std::vector<double>> Smooth(const LSequence& sequence) const;

 private:
  const ConstraintSet* constraints_;
  Params params_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_BASELINE_HMM_H_
