#ifndef RFIDCLEAN_BASELINE_UNCLEANED_H_
#define RFIDCLEAN_BASELINE_UNCLEANED_H_

#include <vector>

#include "model/lsequence.h"
#include "model/trajectory.h"

namespace rfidclean {

/// The per-instant independent interpretation of the readings, i.e. p*(t|Θ)
/// with no constraint knowledge (§1, Example 1). Serves as the accuracy
/// baseline of the Figure-9 experiments: how well do queries do *before*
/// cleaning?
class UncleanedModel {
 public:
  /// `sequence` must outlive the model.
  explicit UncleanedModel(const LSequence& sequence);

  /// Marginal probability that the object is at `location` at time `t`
  /// (simply the a-priori candidate probability).
  double StayProbability(Timestamp t, LocationId location) const;

  /// The most probable trajectory under independence: argmax per instant.
  Trajectory MostLikelyTrajectory() const;

 private:
  const LSequence* sequence_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_BASELINE_UNCLEANED_H_
