#include "baseline/uncleaned.h"

namespace rfidclean {

UncleanedModel::UncleanedModel(const LSequence& sequence)
    : sequence_(&sequence) {}

double UncleanedModel::StayProbability(Timestamp t,
                                       LocationId location) const {
  return sequence_->ProbabilityAt(t, location);
}

Trajectory UncleanedModel::MostLikelyTrajectory() const {
  Trajectory trajectory;
  for (Timestamp t = 0; t < sequence_->length(); ++t) {
    const std::vector<Candidate>& candidates = sequence_->CandidatesAt(t);
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (candidates[i].probability > candidates[best].probability) best = i;
    }
    trajectory.Append(candidates[best].location);
  }
  return trajectory;
}

}  // namespace rfidclean
