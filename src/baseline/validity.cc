#include "baseline/validity.h"

#include <algorithm>

namespace rfidclean {

bool IsValidTrajectory(const Trajectory& trajectory,
                       const ConstraintSet& constraints) {
  const Timestamp n = trajectory.length();
  if (n == 0) return false;

  // Direct unreachability: consecutive steps.
  for (Timestamp t = 0; t + 1 < n; ++t) {
    LocationId from = trajectory.At(t);
    LocationId to = trajectory.At(t + 1);
    if (from != to && constraints.IsUnreachable(from, to)) return false;
  }

  // Latency: every maximal stay that ends by moving away (not by the window
  // end) must reach the location's minimum duration.
  Timestamp stay_start = 0;
  for (Timestamp t = 1; t <= n; ++t) {
    const bool stay_ends_here = t < n && trajectory.At(t) != trajectory.At(t - 1);
    if (t == n || stay_ends_here) {
      if (t < n) {  // Ended by moving away.
        LocationId location = trajectory.At(stay_start);
        Timestamp required = constraints.LatencyOf(location);
        if (required > 0 && t - stay_start < required) return false;
      }
      stay_start = t;
    }
  }

  // Traveling time: every ordered pair of time points.
  for (Timestamp t1 = 0; t1 < n; ++t1) {
    LocationId from = trajectory.At(t1);
    if (!constraints.HasTravelingTimeFrom(from)) continue;
    Timestamp horizon =
        std::min<Timestamp>(n, t1 + constraints.MaxTravelingTimeFrom(from));
    for (Timestamp t2 = t1 + 1; t2 < horizon; ++t2) {
      LocationId to = trajectory.At(t2);
      if (to == from) continue;
      Timestamp required = constraints.MinTravelTicks(from, to);
      if (required > 0 && t2 - t1 < required) return false;
    }
  }
  return true;
}

}  // namespace rfidclean
