#include "baseline/hmm.h"

#include <algorithm>

#include "common/check.h"

namespace rfidclean {

HmmSmoother::HmmSmoother(const ConstraintSet& constraints,
                         const Params& params)
    : constraints_(&constraints), params_(params) {
  RFID_CHECK_GT(params_.self_transition, 0.0);
  RFID_CHECK_LT(params_.self_transition, 1.0);
}

std::vector<std::vector<double>> HmmSmoother::Smooth(
    const LSequence& sequence) const {
  const std::size_t n = constraints_->num_locations();
  const Timestamp length = sequence.length();

  // Row-normalized transition matrix from the DU constraints.
  std::vector<double> transition(n * n, 0.0);
  for (std::size_t from = 0; from < n; ++from) {
    std::size_t moves = 0;
    for (std::size_t to = 0; to < n; ++to) {
      if (from != to &&
          !constraints_->IsUnreachable(static_cast<LocationId>(from),
                                       static_cast<LocationId>(to))) {
        ++moves;
      }
    }
    double move_mass =
        moves == 0 ? 0.0 : (1.0 - params_.self_transition) / moves;
    for (std::size_t to = 0; to < n; ++to) {
      if (from == to) {
        transition[from * n + to] =
            moves == 0 ? 1.0 : params_.self_transition;
      } else if (!constraints_->IsUnreachable(
                     static_cast<LocationId>(from),
                     static_cast<LocationId>(to))) {
        transition[from * n + to] = move_mass;
      }
    }
  }

  auto emission = [&sequence](Timestamp t, std::size_t location) {
    return sequence.ProbabilityAt(t, static_cast<LocationId>(location));
  };
  auto normalize = [](std::vector<double>& row) {
    double total = 0.0;
    for (double value : row) total += value;
    if (total > 0.0) {
      for (double& value : row) value /= total;
    }
    return total;
  };

  // Forward pass (scaled per step).
  std::vector<std::vector<double>> alpha(
      static_cast<std::size_t>(length), std::vector<double>(n, 0.0));
  for (std::size_t l = 0; l < n; ++l) alpha[0][l] = emission(0, l);
  normalize(alpha[0]);
  for (Timestamp t = 1; t < length; ++t) {
    auto& current = alpha[static_cast<std::size_t>(t)];
    const auto& previous = alpha[static_cast<std::size_t>(t) - 1];
    for (std::size_t to = 0; to < n; ++to) {
      double mass = 0.0;
      for (std::size_t from = 0; from < n; ++from) {
        mass += previous[from] * transition[from * n + to];
      }
      current[to] = mass * emission(t, to);
    }
    if (normalize(current) == 0.0) {
      // Emissions incompatible with every reachable state: restart from
      // the emission distribution alone (standard HMM failure handling).
      for (std::size_t l = 0; l < n; ++l) current[l] = emission(t, l);
      normalize(current);
    }
  }

  // Backward pass (scaled per step).
  std::vector<std::vector<double>> beta(
      static_cast<std::size_t>(length), std::vector<double>(n, 1.0));
  for (Timestamp t = length - 2; t >= 0; --t) {
    auto& current = beta[static_cast<std::size_t>(t)];
    const auto& next = beta[static_cast<std::size_t>(t) + 1];
    for (std::size_t from = 0; from < n; ++from) {
      double mass = 0.0;
      for (std::size_t to = 0; to < n; ++to) {
        mass += transition[from * n + to] * emission(t + 1, to) * next[to];
      }
      current[from] = mass;
    }
    if (normalize(current) == 0.0) {
      std::fill(current.begin(), current.end(), 1.0 / static_cast<double>(n));
    }
  }

  // Posterior marginals.
  std::vector<std::vector<double>> posterior(
      static_cast<std::size_t>(length), std::vector<double>(n, 0.0));
  for (Timestamp t = 0; t < length; ++t) {
    auto& row = posterior[static_cast<std::size_t>(t)];
    for (std::size_t l = 0; l < n; ++l) {
      row[l] = alpha[static_cast<std::size_t>(t)][l] *
               beta[static_cast<std::size_t>(t)][l];
    }
    if (normalize(row) == 0.0) {
      row = alpha[static_cast<std::size_t>(t)];
    }
  }
  return posterior;
}

}  // namespace rfidclean
