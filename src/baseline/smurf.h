#ifndef RFIDCLEAN_BASELINE_SMURF_H_
#define RFIDCLEAN_BASELINE_SMURF_H_

#include <vector>

#include "model/rsequence.h"

namespace rfidclean {

/// SMURF-style adaptive smoothing (Jeffery et al., VLDB'06 — the paper's
/// reference [14]): the classical RFID cleaning baseline the ct-graph
/// approach is contrasted against in §7. SMURF operates *per reader*, with
/// no knowledge of the map: for each (tag, reader) stream of raw epochs it
/// maintains a sliding window and declares the tag present at an epoch if
/// the window around it contains at least one detection. The window size
/// adapts per reader using binomial sampling arguments:
///
///  - completeness: with observed per-epoch read rate p̂, a window of
///    w* = ceil(ln(1/δ) / p̂) epochs captures a present tag with
///    probability ≥ 1 - δ;
///  - responsiveness: if the detection count in the current window is
///    statistically below the binomial expectation w·p̂ (beyond two
///    standard deviations), a transition (tag left the range) is likely and
///    the window is halved.
///
/// The smoothed output is again a reading sequence — per epoch, the set of
/// readers considered to cover the tag — which is then interpreted exactly
/// like raw readings (AprioriModel + per-instant independence). Because
/// SMURF cleans each reader stream separately, it cannot exploit the
/// spatio-temporal correlations the integrity constraints describe; that
/// contrast is measured in bench/baseline_comparison.
class SmurfSmoother {
 public:
  struct Params {
    /// Completeness target δ: the probability of missing a present tag
    /// within one window.
    double delta = 0.05;
    /// Initial and maximum window sizes, in epochs.
    int initial_window = 3;
    int max_window = 20;
  };

  explicit SmurfSmoother(const Params& params);
  SmurfSmoother() : SmurfSmoother(Params()) {}

  /// Smooths a raw reading sequence. `num_readers` bounds the reader ids
  /// appearing in the sequence.
  RSequence Smooth(const RSequence& raw, int num_readers) const;

 private:
  Params params_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_BASELINE_SMURF_H_
