#ifndef RFIDCLEAN_BASELINE_VALIDITY_H_
#define RFIDCLEAN_BASELINE_VALIDITY_H_

#include "constraints/constraint_set.h"
#include "model/trajectory.h"

namespace rfidclean {

/// Direct implementation of Definition 2: is `trajectory` valid w.r.t.
/// `constraints`?
///  - latency(l, δ): every stay at l lasts ≥ δ ticks. A stay truncated by
///    the end of the monitoring window is not a violation (the
///    boundary-tolerant reading realized by Algorithm 1; see DESIGN.md),
///    while a stay starting at τ = 0 must satisfy δ (or reach the window
///    end).
///  - unreachable(l1, l2): no step from l1 directly to l2.
///  - travelingTime(l1, l2, ν): no pair of time points τ1 < τ2 with the
///    object at l1 at τ1 and at l2 at τ2 and τ2 - τ1 < ν.
///
/// Quadratic in the trajectory length; intended as the ground-truth oracle
/// for tests and the naive baseline, not for production cleaning.
bool IsValidTrajectory(const Trajectory& trajectory,
                       const ConstraintSet& constraints);

}  // namespace rfidclean

#endif  // RFIDCLEAN_BASELINE_VALIDITY_H_
