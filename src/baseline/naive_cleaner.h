#ifndef RFIDCLEAN_BASELINE_NAIVE_CLEANER_H_
#define RFIDCLEAN_BASELINE_NAIVE_CLEANER_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "constraints/constraint_set.h"
#include "model/lsequence.h"
#include "model/trajectory.h"

namespace rfidclean {

/// The naive conditioning approach the paper argues against (§1): enumerate
/// every trajectory over the l-sequence, discard the invalid ones
/// (Definition 2), and renormalize the survivors' a-priori probabilities.
/// Exponential in the sequence length — it exists as the correctness oracle
/// for the ct-graph algorithm and as the baseline of the ablation benches.
class NaiveCleaner {
 public:
  /// A valid trajectory with its conditioned probability.
  using Entry = std::pair<Trajectory, double>;

  explicit NaiveCleaner(const ConstraintSet& constraints);

  /// Enumerates, filters and conditions. Fails with ResourceExhausted when
  /// the sequence admits more than `max_trajectories` interpretations, and
  /// with FailedPrecondition when no valid trajectory exists.
  Result<std::vector<Entry>> Clean(const LSequence& sequence,
                                   std::size_t max_trajectories = 1u
                                                                  << 22) const;

  /// Conditioned marginal distribution over locations at each time point,
  /// computed from a Clean() result: marginals[t][l] = Σ p(traj) over valid
  /// trajectories whose t-th step is l. Index by LocationId up to
  /// `num_locations`.
  static std::vector<std::vector<double>> Marginals(
      const std::vector<Entry>& cleaned, std::size_t num_locations);

 private:
  const ConstraintSet* constraints_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_BASELINE_NAIVE_CLEANER_H_
