#include "baseline/smurf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rfidclean {

SmurfSmoother::SmurfSmoother(const Params& params) : params_(params) {
  RFID_CHECK_GT(params_.delta, 0.0);
  RFID_CHECK_LT(params_.delta, 1.0);
  RFID_CHECK_GE(params_.initial_window, 1);
  RFID_CHECK_GE(params_.max_window, params_.initial_window);
}

RSequence SmurfSmoother::Smooth(const RSequence& raw,
                                int num_readers) const {
  const Timestamp length = raw.length();
  // Detection bitmap per reader.
  std::vector<std::vector<bool>> detected(
      static_cast<std::size_t>(num_readers),
      std::vector<bool>(static_cast<std::size_t>(length), false));
  for (Timestamp t = 0; t < length; ++t) {
    for (ReaderId r : raw.ReadersAt(t)) {
      RFID_CHECK_LT(r, num_readers);
      detected[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)] =
          true;
    }
  }

  std::vector<std::vector<ReaderId>> smoothed(
      static_cast<std::size_t>(length));
  for (ReaderId r = 0; r < num_readers; ++r) {
    const std::vector<bool>& stream =
        detected[static_cast<std::size_t>(r)];
    int window = params_.initial_window;
    for (Timestamp t = 0; t < length; ++t) {
      // Centered window [t - w/2, t + w/2], clipped to the sequence.
      Timestamp lo = std::max<Timestamp>(0, t - window / 2);
      Timestamp hi = std::min<Timestamp>(length - 1, t + window / 2);
      int count = 0;
      for (Timestamp u = lo; u <= hi; ++u) {
        if (stream[static_cast<std::size_t>(u)]) ++count;
      }
      if (count > 0) {
        smoothed[static_cast<std::size_t>(t)].push_back(r);
      }
      if (count >= 2) {
        // Adapt the window from the observed read rate p̂ within the
        // current window; a single detection carries no rate evidence and
        // leaves the window unchanged (otherwise one spurious read would
        // inflate the window toward its maximum and smear).
        double span = static_cast<double>(hi - lo + 1);
        double rate = static_cast<double>(count) / span;
        int required = static_cast<int>(
            std::ceil(std::log(1.0 / params_.delta) / rate));
        window = std::clamp(required, params_.initial_window,
                            params_.max_window);
      } else if (count == 0) {
        // Responsiveness: an empty window after activity suggests the tag
        // left the reader's range; shrink toward the initial size so the
        // smoothed presence reacts quickly (SMURF's window-halving rule).
        window = std::max(params_.initial_window, window / 2);
      }
    }
  }

  std::vector<Reading> readings;
  readings.reserve(static_cast<std::size_t>(length));
  for (Timestamp t = 0; t < length; ++t) {
    readings.push_back(
        Reading{t, std::move(smoothed[static_cast<std::size_t>(t)])});
  }
  Result<RSequence> sequence = RSequence::Create(std::move(readings));
  RFID_CHECK(sequence.ok());
  return std::move(sequence).value();
}

}  // namespace rfidclean
