#include "baseline/naive_cleaner.h"

#include "baseline/validity.h"
#include "common/check.h"
#include "common/strings.h"

namespace rfidclean {

NaiveCleaner::NaiveCleaner(const ConstraintSet& constraints)
    : constraints_(&constraints) {}

Result<std::vector<NaiveCleaner::Entry>> NaiveCleaner::Clean(
    const LSequence& sequence, std::size_t max_trajectories) const {
  double count = sequence.NumTrajectories();
  if (count > static_cast<double>(max_trajectories)) {
    return ResourceExhaustedError(StrFormat(
        "sequence admits %.3g trajectories, above the cap of %zu", count,
        max_trajectories));
  }
  const Timestamp n = sequence.length();
  std::vector<Entry> valid;
  std::vector<LocationId> steps(static_cast<std::size_t>(n));
  // Odometer-style enumeration over the candidate lists.
  std::vector<std::size_t> choice(static_cast<std::size_t>(n), 0);
  double total_valid_mass = 0.0;
  for (;;) {
    double probability = 1.0;
    for (Timestamp t = 0; t < n; ++t) {
      const Candidate& candidate =
          sequence.CandidatesAt(t)[choice[static_cast<std::size_t>(t)]];
      steps[static_cast<std::size_t>(t)] = candidate.location;
      probability *= candidate.probability;
    }
    Trajectory trajectory(steps);
    if (IsValidTrajectory(trajectory, *constraints_)) {
      total_valid_mass += probability;
      valid.emplace_back(std::move(trajectory), probability);
    }
    // Advance the odometer.
    Timestamp t = n - 1;
    while (t >= 0) {
      std::size_t& c = choice[static_cast<std::size_t>(t)];
      if (++c < sequence.CandidatesAt(t).size()) break;
      c = 0;
      --t;
    }
    if (t < 0) break;
  }
  if (valid.empty() || total_valid_mass <= 0.0) {
    return FailedPreconditionError(
        "the integrity constraints rule out every interpretation of the "
        "readings");
  }
  for (Entry& entry : valid) entry.second /= total_valid_mass;
  return valid;
}

std::vector<std::vector<double>> NaiveCleaner::Marginals(
    const std::vector<Entry>& cleaned, std::size_t num_locations) {
  RFID_CHECK(!cleaned.empty());
  const Timestamp n = cleaned.front().first.length();
  std::vector<std::vector<double>> marginals(
      static_cast<std::size_t>(n), std::vector<double>(num_locations, 0.0));
  for (const Entry& entry : cleaned) {
    RFID_CHECK_EQ(entry.first.length(), n);
    for (Timestamp t = 0; t < n; ++t) {
      marginals[static_cast<std::size_t>(t)]
               [static_cast<std::size_t>(entry.first.At(t))] += entry.second;
    }
  }
  return marginals;
}

}  // namespace rfidclean
