#include "runtime/batch_cleaner.h"

#include <exception>
#include <optional>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/cleaning_stats.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/arena.h"
#include "runtime/shard_queue.h"

namespace rfidclean {

namespace {

#if RFIDCLEAN_STATS_ENABLED
/// Maps a tag outcome status onto its taxonomy counter. Internal errors
/// never reach here (exceptions are boxed in run_worker, which counts them
/// itself).
obs::Counter OutcomeCounter(const Result<CtGraph>& graph) {
  if (graph.ok()) return obs::Counter::kBatchTagsCleaned;
  switch (graph.status().code()) {
    case StatusCode::kFailedPrecondition:
      return obs::Counter::kBatchTagsFailedPrecondition;
    case StatusCode::kInternal:
      return obs::Counter::kBatchTagsInternalError;
    default:
      return obs::Counter::kBatchTagsInvalidArgument;
  }
}
#endif

/// Cleans one workload with the worker's recycled capacity hints. All
/// error messages are deterministic functions of the workload, so outcomes
/// compare bit-identical across job counts and runs.
TagOutcome CleanOne(const SuccessorGenerator& successors,
                    const FeasibilityOracle* oracle,
                    const TagWorkload& workload, const BatchOptions& options,
                    std::size_t index, runtime::WorkerArena* arena,
                    ThreadPool* pool, std::uint64_t constraint_digest) {
  obs::PhaseTimer phase_timer(obs::Phase::kTagClean);
  RFID_STATS(const Stopwatch tag_watch);
  // Every kill decision and summary recorded while this workload cleans —
  // by the preflight, the forward engine, or the conditioning pass —
  // carries this tag; outcomes for other paths (doomed, push failure) are
  // attributed below. No-op symbol in explain-off builds.
  obs::SetExplainTag(static_cast<long long>(workload.tag));
  BuildStats stats;
  // Which explain coverage the clean reached: doomed tags are summarized
  // by the preflight itself and ConditionAndCompact summarizes everything
  // that finishes, so only the paths that die before Finish (empty stream,
  // mid-stream Push failure) need a summary from this layer.
  bool explain_covered = false;
  Result<CtGraph> graph = [&]() -> Result<CtGraph> {
    if (workload.sequence.length() == 0) {
      return InvalidArgumentError(
          StrFormat("tag %lld has an empty stream",
                    static_cast<long long>(workload.tag)));
    }
    std::optional<PreflightPlan> plan;
    if (oracle != nullptr) {
      const Stopwatch preflight_watch;
      plan = oracle->Analyze(workload.sequence);
      stats.preflight_millis = preflight_watch.ElapsedMillis();
      stats.doomed_at = plan->doomed_at;
      stats.preflight_candidates_pruned = plan->candidates_pruned;
      if (plan->doomed()) {
        // Fail fast with Push's verbatim failure: if every Push succeeded,
        // Finish cannot fail, so a doomed sequence always dies in some
        // Push — the fast path only moves *when* the status surfaces.
        explain_covered = true;  // Analyze recorded the doomed summary.
        return FailedPreconditionError(
            "the new tick leaves no consistent interpretation of the "
            "readings");
      }
      if (!plan->any_pruned()) plan.reset();
    }
    StreamingCleaner cleaner(successors);
    cleaner.SetThreadPool(pool);
    arena->Prepare(&cleaner, workload.sequence.length());
    if (plan.has_value()) cleaner.SetPreflightPlan(&*plan);
    const Stopwatch forward_watch;
    for (Timestamp t = 0; t < workload.sequence.length(); ++t) {
      Status pushed = cleaner.Push(workload.sequence.CandidatesAt(t));
      if (!pushed.ok()) return pushed;
      if (options.after_tick) options.after_tick(index, t);
    }
    stats.forward_millis = forward_watch.ElapsedMillis();
    explain_covered = true;  // Finish's conditioning records the summary.
    return std::move(cleaner).Finish(&stats);
  }();
#if RFIDCLEAN_EXPLAIN_ENABLED
  if (obs::ExplainArmed() && !graph.ok() && !explain_covered) {
    // The clean died before conditioning (empty stream or a Push left no
    // consistent interpretation): record the outcome so the report lists
    // every tag of the batch exactly once.
    obs::ExplainTagSummary summary;
    summary.tag = static_cast<long long>(workload.tag);
    summary.status = graph.status().message();
    obs::RecordTagExplain(std::move(summary));
  }
#else
  (void)explain_covered;
#endif
  if (graph.ok()) arena->Observe(stats, workload.sequence.length());
#if RFIDCLEAN_STATS_ENABLED
  obs::Add(OutcomeCounter(graph));
  obs::ObserveValue(
      obs::Dist::kTagMicros,
      static_cast<std::uint64_t>(tag_watch.ElapsedMillis() * 1000.0));
#endif
  if (obs::TraceActive()) {
    // Graph digesting is a full structural walk — only worth it when a
    // trace session is recording the provenance.
    obs::TagProvenance provenance;
    provenance.tag = static_cast<long long>(workload.tag);
    provenance.input_digest = workload.sequence.Digest();
    provenance.constraint_digest = constraint_digest;
    provenance.graph_digest = graph.ok() ? graph.value().Digest() : 0;
    provenance.forward_millis = stats.forward_millis;
    provenance.backward_millis = stats.backward_millis;
    provenance.status = graph.ok() ? "ok" : graph.status().ToString();
    obs::RecordTagProvenance(std::move(provenance));
  }
  return TagOutcome{workload.tag, std::move(graph), stats};
}

}  // namespace

BatchCleaner::BatchCleaner(const ConstraintSet& constraints,
                           BatchOptions options)
    : constraints_(&constraints),
      options_(std::move(options)),
      successors_(constraints, options_.successor),
      constraint_digest_(constraints.Digest()) {
  if (options_.jobs < 1) options_.jobs = 1;
  if (options_.preflight) oracle_.emplace(constraints);
}

std::vector<TagOutcome> BatchCleaner::CleanAll(
    const std::vector<TagWorkload>& workloads) const {
  if (options_.trace.enabled && !obs::TraceActive()) {
    obs::StartTracing(options_.trace);
  }
#if RFIDCLEAN_EXPLAIN_ENABLED
  if (options_.explain.enabled && !obs::ExplainArmed()) {
    obs::StartExplain(options_.explain);
  }
#endif
  RFID_TRACE_SPAN(batch_span, "batch", "batch_clean_all");
  RFID_TRACE(batch_span.AddArg("tags", workloads.size()));
  std::vector<std::optional<TagOutcome>> slots(workloads.size());
  if (!workloads.empty()) {
    const std::size_t num_workers =
        std::min(static_cast<std::size_t>(options_.jobs), workloads.size());
    RFID_TRACE(batch_span.AddArg("workers", num_workers));
    runtime::ShardQueue queue(workloads.size(), num_workers);

    // Each worker owns slot writes for the shards it pops (shards are
    // handed out exactly once), so no synchronization beyond the queue and
    // the final joins is needed.
    auto run_worker = [&](std::size_t worker) {
      RFID_TRACE(obs::SetTraceThreadName(StrFormat("worker-%d",
                                                   static_cast<int>(worker))));
      runtime::WorkerArena arena;
      // Worker-private lanes for intra-tag layer parallelism; byte-identity
      // across forward_threads values rests on the engine's Phase A/B
      // split, so the pool's only observable effect is wall-clock.
      std::optional<ThreadPool> pool;
      if (options_.forward_threads > 1) {
        pool.emplace(options_.forward_threads);
      }
      std::size_t shard = 0;
      while (queue.Pop(worker, &shard)) {
        // Counted per popped shard (not inside CleanOne) so that every
        // shard gets exactly one provision count and one outcome count,
        // whichever path — success, error status, or throw — it takes.
        RFID_STATS(obs::Add(arena.tick_hint() > 0
                                ? obs::Counter::kBatchArenaReuses
                                : obs::Counter::kBatchArenaColdStarts));
        // Outside the tag span: whether this worker's arena had hints is a
        // scheduling artifact, and tag_clean subtrees must stay identical
        // across job counts (tests/obs_trace_test.cc).
        RFID_TRACE(obs::TraceInstant(
            "batch", "arena_prepare", "reused",
            static_cast<std::uint64_t>(arena.tick_hint() > 0)));
        {
          RFID_TRACE_SPAN(tag_span, "batch", "tag_clean");
          RFID_TRACE(tag_span.AddArg(
              "tag", static_cast<std::uint64_t>(workloads[shard].tag)));
          try {
            if (options_.before_tag) options_.before_tag(shard);
            slots[shard].emplace(CleanOne(
                successors_, oracle_.has_value() ? &*oracle_ : nullptr,
                workloads[shard], options_, shard, &arena,
                pool.has_value() ? &*pool : nullptr, constraint_digest_));
          } catch (const std::exception& e) {
            RFID_STATS(obs::Add(obs::Counter::kBatchTagsInternalError));
            slots[shard].emplace(TagOutcome{
                workloads[shard].tag,
                InternalError(StrFormat(
                    "uncaught exception while cleaning tag %lld: %s",
                    static_cast<long long>(workloads[shard].tag), e.what())),
                BuildStats{}});
          } catch (...) {
            RFID_STATS(obs::Add(obs::Counter::kBatchTagsInternalError));
            slots[shard].emplace(TagOutcome{
                workloads[shard].tag,
                InternalError(StrFormat(
                    "uncaught exception while cleaning tag %lld",
                    static_cast<long long>(workloads[shard].tag))),
                BuildStats{}});
          }
          RFID_TRACE(tag_span.AddArg(
              "ok", static_cast<std::uint64_t>(slots[shard]->graph.ok())));
        }
        // Counter tracks sample global snapshots, which depend on what the
        // other workers have finished — also outside the tag span.
        RFID_TRACE(obs::TraceSampleCounterTracks());
      }
    };

    if (num_workers == 1) {
      run_worker(0);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(num_workers);
      for (std::size_t w = 0; w < num_workers; ++w) {
        workers.emplace_back(run_worker, w);
      }
      for (std::thread& worker : workers) worker.join();
    }
  }

  std::vector<TagOutcome> outcomes;
  outcomes.reserve(slots.size());
  for (std::optional<TagOutcome>& slot : slots) {
    RFID_CHECK(slot.has_value());
    outcomes.push_back(std::move(*slot));
  }
  return outcomes;
}

}  // namespace rfidclean
