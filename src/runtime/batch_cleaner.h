#ifndef RFIDCLEAN_RUNTIME_BATCH_CLEANER_H_
#define RFIDCLEAN_RUNTIME_BATCH_CLEANER_H_

#include <functional>
#include <optional>
#include <vector>

#include "analysis/feasibility.h"
#include "common/result.h"
#include "constraints/constraint_set.h"
#include "core/builder.h"
#include "core/ct_graph.h"
#include "core/streaming.h"
#include "model/lsequence.h"
#include "model/reading.h"
#include "obs/explain.h"
#include "obs/trace.h"

namespace rfidclean {

/// One tag's interpreted reading stream, ready for cleaning. Tags are
/// independent given the map and the constraint set (the per-tag factoring
/// of Cao et al.'s distributed RFID inference), so a batch of workloads is
/// embarrassingly parallel.
struct TagWorkload {
  TagId tag = 0;
  LSequence sequence;
};

/// The per-tag result: either the conditioned trajectory graph or the error
/// that tag's stream produced (an inconsistent stream yields
/// FailedPrecondition exactly as StreamingCleaner::Push does; an empty
/// stream yields InvalidArgument). One tag failing never affects another.
struct TagOutcome {
  TagId tag = 0;
  Result<CtGraph> graph;
  BuildStats stats;
};

struct BatchOptions {
  /// Worker threads. Values < 1 are clamped to 1; jobs == 1 cleans on the
  /// calling thread without spawning. More jobs than tags is fine — the
  /// surplus workers drain by stealing and exit.
  int jobs = 1;
  SuccessorOptions successor;
  /// Static feasibility preflight (see CleanOptions::preflight): doomed
  /// tags fail fast without pushing a single tick, and statically dead
  /// candidates are dropped before the engine sees them. Output graphs and
  /// statuses are byte-identical either way.
  bool preflight = true;
  /// Intra-tag layer parallelism (see CleanOptions::forward_threads): each
  /// worker owns a private fork-join pool of this many lanes and splits
  /// successor generation over wide layers across them. 1 = off (the
  /// default — across-tag parallelism via `jobs` is almost always the
  /// better first lever; this helps batches of few very wide tags). Output
  /// is byte-identical for every value. Total thread count is roughly
  /// jobs × forward_threads; tune the product to the machine.
  int forward_threads = 1;
  /// Instrumentation/test hook run in the owning worker right before shard
  /// `index` (the workload's position) is cleaned. Must be thread-safe; an
  /// exception it throws is converted into an Internal outcome for that
  /// tag only.
  std::function<void(std::size_t index)> before_tag;
  /// Instrumentation/test hook run after each successfully pushed tick of
  /// shard `index`, while that tag's graph is partially built. Same
  /// contract as before_tag: thread-safe, and a throw yields an Internal
  /// outcome for that tag only — with the worker's arena still recyclable
  /// for the next tag (enforced by tests/batch_stress_test.cc).
  std::function<void(std::size_t index, Timestamp t)> after_tick;
  /// When `trace.enabled` is set and no trace session is active yet,
  /// CleanAll starts one with these options (obs/trace.h) before spawning
  /// workers; an already-active session is left untouched, so a CLI that
  /// traced the io phase keeps one continuous timeline. The session is
  /// never stopped here — collection/export stay with the embedder.
  obs::TraceOptions trace;
  /// Same embedding contract for explain sessions (obs/explain.h): when
  /// `explain.enabled` is set and no session is armed yet, CleanAll arms
  /// one with these options before spawning workers and leaves collection
  /// and export to the embedder. Workers stamp the thread-local explain
  /// tag with each workload's TagId, so every recorded kill decision and
  /// per-tag summary carries the tag it belongs to regardless of which
  /// worker cleaned it.
  obs::ExplainOptions explain;
};

/// Cleans N independent tag streams concurrently on a fixed-size pool of
/// `jobs` workers: a work-stealing queue (runtime/shard_queue.h) balances
/// per-tag shards across workers, each worker recycles its allocation
/// high-water marks across tags (runtime/arena.h), and every outcome lands
/// in the slot of its workload, so the result order — and every byte of
/// every result — is independent of scheduling. Per tag the engine is the
/// StreamingCleaner itself, which makes "parallel ≡ sequential" exact:
/// BatchCleaner output is bit-identical to looping StreamingCleaner over
/// the same workloads (enforced by tests/batch_differential_test.cc).
///
/// Thread-safety inputs: ConstraintSet and SuccessorGenerator are immutable
/// after construction (the generator's constraint tables — hop distances,
/// TL relevance windows — are derived once here instead of once per tag)
/// and the self-audit hook (core/self_audit.h) is an atomic read, so
/// workers share all of them without synchronization.
class BatchCleaner {
 public:
  /// The constraint set must outlive the cleaner.
  explicit BatchCleaner(const ConstraintSet& constraints,
                        BatchOptions options = BatchOptions());

  /// Cleans every workload; outcomes are returned in workload order
  /// regardless of jobs and scheduling. An empty batch returns an empty
  /// vector without spawning workers.
  std::vector<TagOutcome> CleanAll(
      const std::vector<TagWorkload>& workloads) const;

  int jobs() const { return options_.jobs; }

 private:
  const ConstraintSet* constraints_;
  BatchOptions options_;
  SuccessorGenerator successors_;
  /// Shared preflight analyzer (Analyze is const, so workers share it);
  /// absent when BatchOptions::preflight is off.
  std::optional<FeasibilityOracle> oracle_;
  /// Computed once at construction; stamped into every tag's trace
  /// provenance record (constraint sets are immutable and shared).
  std::uint64_t constraint_digest_ = 0;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_RUNTIME_BATCH_CLEANER_H_
