#ifndef RFIDCLEAN_RUNTIME_SHARD_QUEUE_H_
#define RFIDCLEAN_RUNTIME_SHARD_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace rfidclean::runtime {

/// Work-stealing distributor of shard indices [0, num_shards) across
/// `num_workers` workers. Shards are dealt round-robin into per-worker
/// lanes at construction; Pop(worker) serves the worker's own lane in FIFO
/// order and, once that lane drains, steals from the back of the most
/// loaded other lane. Round-robin dealing gives each worker an even share
/// when shards are uniform; stealing rebalances skewed shard sizes (one
/// giant tag among hundreds of short ones) and workers that outnumber
/// shards simply drain by theft.
///
/// The lanes are mutex-guarded — per-shard work (cleaning one tag) is
/// orders of magnitude coarser than a lock, so a lock-free deque would buy
/// nothing — with a relaxed per-lane size counter for victim selection
/// only. All methods are thread-safe.
class ShardQueue {
 public:
  ShardQueue(std::size_t num_shards, std::size_t num_workers);

  ShardQueue(const ShardQueue&) = delete;
  ShardQueue& operator=(const ShardQueue&) = delete;

  /// Delivers the next shard for `worker` (own lane first, then theft).
  /// Returns false only when every lane is empty: the queue is drained.
  bool Pop(std::size_t worker, std::size_t* shard);

  std::size_t num_workers() const { return lanes_.size(); }

 private:
  struct Lane {
    std::mutex mu;
    std::deque<std::size_t> shards;
    /// Approximate size for victim selection; the mutex is authoritative.
    std::atomic<std::size_t> approx_size{0};
  };

  /// unique_ptr because Lane (mutex + atomic) is not movable.
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace rfidclean::runtime

#endif  // RFIDCLEAN_RUNTIME_SHARD_QUEUE_H_
