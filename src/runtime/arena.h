#ifndef RFIDCLEAN_RUNTIME_ARENA_H_
#define RFIDCLEAN_RUNTIME_ARENA_H_

#include <algorithm>
#include <cstddef>

#include "core/builder.h"
#include "core/streaming.h"

namespace rfidclean::runtime {

/// Thread-confined allocation recycler for consecutive cleanings. Each
/// BatchCleaner worker owns one WorkerArena; before cleaning a tag it
/// pre-reserves the StreamingCleaner's node/edge/layer storage to the
/// high-water marks observed over the tags the worker already processed,
/// so in steady state a per-tag build performs one up-front reservation
/// instead of a geometric regrowth chain of its work arrays (the dominant
/// allocations of the forward phase). Purely an allocation hint: the
/// cleaning result is bit-identical with or without it.
///
/// Not thread-safe by design — one instance per worker thread.
class WorkerArena {
 public:
  /// Applies the recorded high-water marks to a fresh cleaner about to
  /// consume `expected_ticks` ticks.
  void Prepare(StreamingCleaner* cleaner, Timestamp expected_ticks) const {
    cleaner->ReserveCapacity(node_hint_, edge_hint_,
                             std::max(expected_ticks, tick_hint_),
                             key_hint_);
  }

  /// Records the peak node/edge/key counts of a finished build (BuildStats
  /// is filled by StreamingCleaner::Finish) and the tick count it spanned.
  void Observe(const BuildStats& stats, Timestamp ticks) {
    node_hint_ = std::max(node_hint_, stats.peak_nodes);
    edge_hint_ = std::max(edge_hint_, stats.peak_edges);
    key_hint_ = std::max(key_hint_, stats.peak_keys);
    tick_hint_ = std::max(tick_hint_, ticks);
  }

  std::size_t node_hint() const { return node_hint_; }
  std::size_t edge_hint() const { return edge_hint_; }
  std::size_t key_hint() const { return key_hint_; }
  Timestamp tick_hint() const { return tick_hint_; }

 private:
  std::size_t node_hint_ = 0;
  std::size_t edge_hint_ = 0;
  std::size_t key_hint_ = 0;
  Timestamp tick_hint_ = 0;
};

}  // namespace rfidclean::runtime

#endif  // RFIDCLEAN_RUNTIME_ARENA_H_
