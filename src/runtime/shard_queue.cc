#include "runtime/shard_queue.h"

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rfidclean::runtime {

ShardQueue::ShardQueue(std::size_t num_shards, std::size_t num_workers) {
  RFID_CHECK_GT(num_workers, 0u);
  lanes_.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    Lane& lane = *lanes_[shard % num_workers];
    lane.shards.push_back(shard);
    lane.approx_size.store(lane.shards.size(), std::memory_order_relaxed);
  }
}

bool ShardQueue::Pop(std::size_t worker, std::size_t* shard) {
  RFID_CHECK_LT(worker, lanes_.size());
  Lane& own = *lanes_[worker];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.shards.empty()) {
      *shard = own.shards.front();
      own.shards.pop_front();
      own.approx_size.store(own.shards.size(), std::memory_order_relaxed);
      RFID_STATS(obs::Add(obs::Counter::kQueuePopsLocal));
      return true;
    }
  }
  // Own lane drained: steal from the back of the most loaded victim. The
  // approximate sizes may be stale, so retry until an actual steal succeeds
  // or every lane reads empty under its lock.
  while (true) {
    std::size_t victim = lanes_.size();
    std::size_t victim_size = 0;
    for (std::size_t v = 0; v < lanes_.size(); ++v) {
      if (v == worker) continue;
      std::size_t size = lanes_[v]->approx_size.load(std::memory_order_relaxed);
      if (size > victim_size) {
        victim_size = size;
        victim = v;
      }
    }
    if (victim == lanes_.size()) return false;  // everything reads empty
    Lane& lane = *lanes_[victim];
    std::lock_guard<std::mutex> lock(lane.mu);
    if (lane.shards.empty()) {
      // Lost the race for the victim's last shard; re-scan.
      lane.approx_size.store(0, std::memory_order_relaxed);
      continue;
    }
    *shard = lane.shards.back();
    lane.shards.pop_back();
    lane.approx_size.store(lane.shards.size(), std::memory_order_relaxed);
    RFID_STATS(obs::Add(obs::Counter::kQueueSteals));
    RFID_TRACE(obs::TraceInstant("batch", "steal", "victim",
                                 static_cast<std::uint64_t>(victim)));
    return true;
  }
}

}  // namespace rfidclean::runtime
