#include "rfid/calibration.h"

#include "common/check.h"

namespace rfidclean {

CoverageMatrix Calibrator::Calibrate(const CoverageMatrix& truth, int seconds,
                                     Rng& rng) {
  RFID_CHECK_GT(seconds, 0);
  CoverageMatrix calibrated(truth.num_readers(), truth.num_cells());
  for (ReaderId r = 0; r < truth.num_readers(); ++r) {
    for (int c = 0; c < truth.num_cells(); ++c) {
      double p = truth.Probability(r, c);
      if (p <= 0.0) continue;
      int detections = 0;
      for (int s = 0; s < seconds; ++s) {
        if (rng.Bernoulli(p)) ++detections;
      }
      calibrated.SetProbability(
          r, c, static_cast<double>(detections) / seconds);
    }
  }
  return calibrated;
}

}  // namespace rfidclean
