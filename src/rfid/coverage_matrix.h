#ifndef RFIDCLEAN_RFID_COVERAGE_MATRIX_H_
#define RFIDCLEAN_RFID_COVERAGE_MATRIX_H_

#include <vector>

#include "map/building_grid.h"
#include "rfid/detection_model.h"
#include "rfid/reader.h"

namespace rfidclean {

/// The paper's bi-dimensional array F: one row per reader, one column per
/// grid cell, where F[r, c] is the per-second rate at which reader r detects
/// a tag inside cell c (§6.2, §6.4). Two instances appear in the pipeline:
///  - the *ground-truth* matrix derived from the physical DetectionModel,
///    used by the reading generator;
///  - the *calibrated* matrix estimated by the tag-in-cell procedure
///    (rfid/calibration.h), used to build the a-priori p*(l | R).
class CoverageMatrix {
 public:
  /// Builds the ground-truth matrix from the antenna model.
  static CoverageMatrix FromModel(const std::vector<Reader>& readers,
                                  const BuildingGrid& grid,
                                  const DetectionModel& model);

  /// Creates an all-zero matrix (used by the calibrator).
  CoverageMatrix(int num_readers, int num_cells);

  int num_readers() const { return num_readers_; }
  int num_cells() const { return num_cells_; }

  double Probability(ReaderId reader, int cell) const {
    return rates_[Index(reader, cell)];
  }
  void SetProbability(ReaderId reader, int cell, double rate) {
    rates_[Index(reader, cell)] = rate;
  }

  /// Readers with a non-zero rate somewhere in `cells` — the candidate
  /// detectors of a location. Convenience for diagnostics and tests.
  std::vector<ReaderId> ReadersCovering(const std::vector<int>& cells) const;

 private:
  std::size_t Index(ReaderId reader, int cell) const;

  int num_readers_ = 0;
  int num_cells_ = 0;
  std::vector<double> rates_;  // row-major readers x cells
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_RFID_COVERAGE_MATRIX_H_
