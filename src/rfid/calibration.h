#ifndef RFIDCLEAN_RFID_CALIBRATION_H_
#define RFIDCLEAN_RFID_CALIBRATION_H_

#include "common/rng.h"
#include "rfid/coverage_matrix.h"

namespace rfidclean {

/// Simulates the empirical calibration procedure of §6.2: a tag is kept for
/// `seconds` (the paper uses 30) inside each grid cell; each second, every
/// reader independently detects it with its true per-second rate. The
/// calibrated matrix holds the observed detection *rates* (count / seconds),
/// the empirical estimate of the ground-truth matrix. The a-priori
/// distribution p*(l | R) is then computed from this calibrated matrix —
/// never from the ground truth — exactly as in the paper's methodology.
class Calibrator {
 public:
  /// Runs the procedure against `truth` using `rng` for the detection draws.
  static CoverageMatrix Calibrate(const CoverageMatrix& truth, int seconds,
                                  Rng& rng);
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_RFID_CALIBRATION_H_
