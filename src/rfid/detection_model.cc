#include "rfid/detection_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rfidclean {

DetectionModel::DetectionModel(const Params& params) : params_(params) {
  RFID_CHECK_GT(params_.major_radius, 0.0);
  RFID_CHECK_GE(params_.max_radius, params_.major_radius);
  RFID_CHECK_GT(params_.major_rate, 0.0);
  RFID_CHECK_LE(params_.major_rate, 1.0);
  RFID_CHECK_GE(params_.wall_attenuation, 0.0);
  RFID_CHECK_LE(params_.wall_attenuation, 1.0);
}

double DetectionModel::DetectionProbability(const Reader& reader,
                                            const BuildingGrid& grid,
                                            int global_cell) const {
  if (grid.FloorOfCell(global_cell) != reader.floor) return 0.0;
  Vec2 target = grid.CellCenter(global_cell);
  double distance = Distance(reader.position, target);
  double base;
  if (distance <= params_.major_radius) {
    base = params_.major_rate;
  } else if (distance < params_.max_radius) {
    double span = params_.max_radius - params_.major_radius;
    base = params_.major_rate * (params_.max_radius - distance) / span;
  } else {
    return 0.0;
  }
  int walls = CountWallCells(grid, reader.floor, reader.position, target);
  return base * std::pow(params_.wall_attenuation, walls);
}

int DetectionModel::CountWallCells(const BuildingGrid& grid, int floor,
                                   Vec2 from, Vec2 to) const {
  const OccupancyGrid& fg = grid.floor_grid(floor);
  double length = Distance(from, to);
  if (length == 0.0) return 0;
  // Sample at half-cell resolution and count distinct non-walkable cells.
  double step = fg.cell_size() / 2.0;
  int samples = static_cast<int>(std::ceil(length / step));
  int walls = 0;
  int last_cell = -1;
  for (int i = 0; i <= samples; ++i) {
    Vec2 p = Lerp(from, to, static_cast<double>(i) / samples);
    int cell = fg.CellIndexAt(p);
    if (cell < 0 || cell == last_cell) continue;
    last_cell = cell;
    if (!fg.IsWalkable(cell)) ++walls;
  }
  return walls;
}

}  // namespace rfidclean
