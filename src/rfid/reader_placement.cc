#include "rfid/reader_placement.h"

#include "common/check.h"
#include "common/strings.h"

namespace rfidclean {

namespace {

/// A point `depth` meters inside `footprint` from the door, toward the
/// footprint center.
Vec2 InsideFromDoor(const Rect& footprint, Vec2 door_position, double depth) {
  Vec2 entry = footprint.ClosestPointTo(door_position);
  Vec2 toward = footprint.Center() - entry;
  double norm = toward.Norm();
  if (norm == 0.0) return entry;
  double t = std::min(1.0, depth / norm);
  return entry + toward * t;
}

}  // namespace

std::vector<Reader> PlaceStandardReaders(const Building& building) {
  std::vector<Reader> readers;
  for (std::size_t i = 0; i < building.NumLocations(); ++i) {
    const LocationId id = static_cast<LocationId>(i);
    const Location& loc = building.location(id);
    switch (loc.kind) {
      case LocationKind::kRoom: {
        const std::vector<int>& doors = building.DoorsOf(id);
        RFID_CHECK(!doors.empty());
        const Door& door = building.doors()[static_cast<std::size_t>(doors[0])];
        Vec2 pos = InsideFromDoor(loc.footprint, door.position, 1.2);
        readers.push_back(
            Reader{StrFormat("r.%s", loc.name.c_str()), loc.floor, pos});
        break;
      }
      case LocationKind::kCorridor: {
        // Two readers along the major axis leave reader-free stretches.
        const Rect& f = loc.footprint;
        bool horizontal = f.Width() >= f.Height();
        for (int k = 1; k <= 2; ++k) {
          double t = static_cast<double>(k) / 3.0;
          Vec2 pos = horizontal
                         ? Vec2{f.min.x + t * f.Width(), f.Center().y}
                         : Vec2{f.Center().x, f.min.y + t * f.Height()};
          readers.push_back(Reader{
              StrFormat("r.%s.%d", loc.name.c_str(), k), loc.floor, pos});
        }
        break;
      }
      case LocationKind::kStairwell: {
        readers.push_back(Reader{StrFormat("r.%s", loc.name.c_str()),
                                 loc.floor, loc.footprint.Center()});
        break;
      }
    }
  }
  return readers;
}

}  // namespace rfidclean
