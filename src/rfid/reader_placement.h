#ifndef RFIDCLEAN_RFID_READER_PLACEMENT_H_
#define RFIDCLEAN_RFID_READER_PLACEMENT_H_

#include <vector>

#include "map/building.h"
#include "rfid/reader.h"

namespace rfidclean {

/// Places a standard reader deployment over a building, echoing the setup of
/// Fig. 1(a):
///  - one reader per room, mounted just inside the room's first door (so its
///    range leaks through the doorway into the adjacent location);
///  - two readers along each corridor (at 1/3 and 2/3 of its length);
///  - one reader at each stairwell center.
/// The resulting deployment leaves reader-free zones in the corridors and
/// overlapping coverage near doors — the two sources of ambiguity the paper
/// motivates (multiple locations per reader set, false negatives).
std::vector<Reader> PlaceStandardReaders(const Building& building);

}  // namespace rfidclean

#endif  // RFIDCLEAN_RFID_READER_PLACEMENT_H_
