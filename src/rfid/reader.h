#ifndef RFIDCLEAN_RFID_READER_H_
#define RFIDCLEAN_RFID_READER_H_

#include <cstdint>
#include <string>

#include "geometry/vec2.h"

namespace rfidclean {

/// Identifier of a reader within a deployment (dense, 0-based).
using ReaderId = std::int32_t;

/// An RFID reader antenna mounted at a fixed position on one floor.
struct Reader {
  std::string name;
  int floor = 0;
  Vec2 position;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_RFID_READER_H_
