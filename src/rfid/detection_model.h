#ifndef RFIDCLEAN_RFID_DETECTION_MODEL_H_
#define RFIDCLEAN_RFID_DETECTION_MODEL_H_

#include "map/building_grid.h"
#include "rfid/reader.h"

namespace rfidclean {

/// Physical antenna model following the three-state shape of the paper's
/// reference [4] (Chen et al.): a *major* detection region where the read
/// rate is high and flat, a *minor* region where it decays linearly to zero,
/// and no detection beyond the maximum radius. Radio paths crossing walls
/// are attenuated multiplicatively per crossed wall cell; paths through open
/// doorways are not, which is what makes readers near doors "leak" into the
/// adjacent location and creates the reader/location ambiguity the cleaning
/// framework targets.
class DetectionModel {
 public:
  struct Params {
    double major_radius = 2.0;      ///< Meters of flat high read rate.
    double max_radius = 4.5;        ///< No detection beyond this.
    double major_rate = 0.95;       ///< Read rate inside the major region.
    double wall_attenuation = 0.3;  ///< Per-wall-cell multiplicative factor.
  };

  DetectionModel() : DetectionModel(Params()) {}
  explicit DetectionModel(const Params& params);

  const Params& params() const { return params_; }

  /// Per-second probability that `reader` detects a tag located at the
  /// center of `global_cell`. Zero across floors and beyond max_radius.
  double DetectionProbability(const Reader& reader, const BuildingGrid& grid,
                              int global_cell) const;

 private:
  /// Number of non-walkable (wall) cells crossed by the straight segment
  /// from `from` to `to` on `floor`, estimated by sub-cell sampling.
  int CountWallCells(const BuildingGrid& grid, int floor, Vec2 from,
                     Vec2 to) const;

  Params params_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_RFID_DETECTION_MODEL_H_
