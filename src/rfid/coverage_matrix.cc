#include "rfid/coverage_matrix.h"

#include "common/check.h"

namespace rfidclean {

CoverageMatrix CoverageMatrix::FromModel(const std::vector<Reader>& readers,
                                         const BuildingGrid& grid,
                                         const DetectionModel& model) {
  CoverageMatrix matrix(static_cast<int>(readers.size()), grid.NumCells());
  for (std::size_t r = 0; r < readers.size(); ++r) {
    for (int c = 0; c < grid.NumCells(); ++c) {
      double p = model.DetectionProbability(readers[r], grid, c);
      if (p > 0.0) {
        matrix.SetProbability(static_cast<ReaderId>(r), c, p);
      }
    }
  }
  return matrix;
}

CoverageMatrix::CoverageMatrix(int num_readers, int num_cells)
    : num_readers_(num_readers), num_cells_(num_cells) {
  RFID_CHECK_GT(num_readers, 0);
  RFID_CHECK_GT(num_cells, 0);
  rates_.assign(static_cast<std::size_t>(num_readers) * num_cells, 0.0);
}

std::vector<ReaderId> CoverageMatrix::ReadersCovering(
    const std::vector<int>& cells) const {
  std::vector<ReaderId> out;
  for (ReaderId r = 0; r < num_readers_; ++r) {
    for (int c : cells) {
      if (Probability(r, c) > 0.0) {
        out.push_back(r);
        break;
      }
    }
  }
  return out;
}

std::size_t CoverageMatrix::Index(ReaderId reader, int cell) const {
  RFID_CHECK_GE(reader, 0);
  RFID_CHECK_LT(reader, num_readers_);
  RFID_CHECK_GE(cell, 0);
  RFID_CHECK_LT(cell, num_cells_);
  return static_cast<std::size_t>(reader) * num_cells_ +
         static_cast<std::size_t>(cell);
}

}  // namespace rfidclean
