#ifndef RFIDCLEAN_OBS_TRACE_H_
#define RFIDCLEAN_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Structured timeline tracing for the cleaning pipeline.
///
/// Every traced thread owns a fixed-capacity ring buffer of trace events
/// (span begin/end, instants, counter samples) that only it writes;
/// recording an event is a relaxed atomic load (armed?), one clock read and
/// a few stores — no locks, no allocation. When the ring fills, the oldest
/// events are overwritten and a dropped-events counter keeps the loss
/// visible. Sinks register in the same fold-on-thread-exit registry pattern
/// as the metric sinks (obs/metrics.h): a worker that exits folds its
/// buffer into a retired list so short-lived BatchCleaner workers keep
/// their tracks.
///
/// `CollectTrace()` snapshots all buffers; obs/trace_export.h turns the
/// snapshot into Chrome trace-event JSON loadable in Perfetto and
/// chrome://tracing. Like metric snapshots, collection is exact only once
/// the traced workers are quiesced (BatchCleaner joins its pool before
/// returning).
///
/// Configure with -DRFIDCLEAN_TRACE=OFF to compile every probe to a no-op
/// (the build defines RFIDCLEAN_TRACE_OFF), exactly like RFIDCLEAN_STATS:
/// cleaning results are bit-identical either way. With tracing compiled in
/// but not started, every probe costs one relaxed load and a branch.
///
/// Spans are RAII scopes opened with the RFID_TRACE_SPAN macro; statements
/// that exist purely to feed the tracer are wrapped in RFID_TRACE(...) so
/// disabled builds drop them entirely:
///
///   RFID_TRACE_SPAN(span, "forward", "forward_layer");
///   RFID_TRACE(span.AddArg("width", width));
///
/// Event names, categories and argument names must be string literals (or
/// otherwise outlive the trace session): the ring stores the pointers.

#if defined(RFIDCLEAN_TRACE_OFF)
#define RFIDCLEAN_TRACE_ENABLED 0
#define RFID_TRACE(expr) ((void)0)
#define RFID_TRACE_SPAN(var, category, name) \
  [[maybe_unused]] ::rfidclean::obs::TraceSpan var
#else
#define RFIDCLEAN_TRACE_ENABLED 1
#define RFID_TRACE(expr) expr
#define RFID_TRACE_SPAN(var, category, name) \
  ::rfidclean::obs::TraceSpan var((category), (name))
#endif

namespace rfidclean::obs {

/// Maximum key/value arguments attached to one trace event.
inline constexpr int kMaxTraceArgs = 4;

/// Tracing configuration. Defined in all build modes so embedding hooks
/// (BatchOptions::trace) keep a stable ABI.
struct TraceOptions {
  /// When set on an embedding hook (e.g. BatchOptions::trace), the runtime
  /// starts tracing with these options if no session is active yet.
  bool enabled = false;
  /// Ring capacity, in events, of each per-thread buffer. When a thread
  /// records more, the oldest events are overwritten (drop-oldest) and the
  /// thread's dropped-events counter grows.
  std::size_t buffer_events = std::size_t{1} << 16;
};

enum class TraceEventType : std::uint8_t {
  kBegin,    ///< span opened (Chrome "ph":"B")
  kEnd,      ///< span closed (Chrome "ph":"E"; carries the span's args)
  kInstant,  ///< point event (Chrome "ph":"i", thread-scoped)
  kCounter,  ///< counter-track sample (Chrome "ph":"C")
};

/// One recorded event. Name/category/argument-name pointers must refer to
/// storage that outlives the trace session (string literals in practice).
struct TraceEvent {
  TraceEventType type = TraceEventType::kInstant;
  std::uint8_t num_args = 0;
  const char* name = nullptr;
  const char* category = nullptr;
  /// Nanoseconds since the trace session epoch (StartTracing).
  std::uint64_t ts_nanos = 0;
  const char* arg_names[kMaxTraceArgs] = {};
  std::uint64_t arg_values[kMaxTraceArgs] = {};
};

/// One thread's linearized (oldest-first) event stream.
struct TraceThread {
  int tid = 0;            ///< registration-order id, stable for the session
  std::string name;       ///< from SetTraceThreadName(); may be empty
  std::uint64_t dropped_events = 0;  ///< events lost to ring overwrite
  std::vector<TraceEvent> events;
};

/// Self-describing record of one cleaned tag: what went in, what came out,
/// and how long each phase took. Appended to the trace metadata and
/// optionally embedded in --stats JSON.
struct TagProvenance {
  long long tag = 0;                    ///< tag id (0 for single-tag runs)
  std::uint64_t input_digest = 0;       ///< FNV-1a of the input l-sequence
  std::uint64_t constraint_digest = 0;  ///< FNV-1a of the constraint set
  std::uint64_t graph_digest = 0;       ///< FNV-1a of the output graph; 0 on failure
  double forward_millis = 0.0;
  double backward_millis = 0.0;
  std::string status;  ///< "ok" or the failure status string
};

/// Snapshot of one trace session: per-thread event streams (sorted by tid)
/// plus the provenance records collected so far.
struct TraceCollection {
  std::vector<TraceThread> threads;
  std::vector<TagProvenance> provenance;

  std::uint64_t DroppedEvents() const {
    std::uint64_t dropped = 0;
    for (const TraceThread& thread : threads) dropped += thread.dropped_events;
    return dropped;
  }
  std::size_t NumEvents() const {
    std::size_t n = 0;
    for (const TraceThread& thread : threads) n += thread.events.size();
    return n;
  }
};

/// Whether this build can trace at all (compile-time constant).
constexpr bool TraceCompiledIn() { return RFIDCLEAN_TRACE_ENABLED != 0; }

#if RFIDCLEAN_TRACE_ENABLED

namespace internal {
/// Session-armed flag. Relaxed is sufficient: arming happens-before any
/// traced work in the supported flows (tracing is started before workers
/// are spawned), and a probe that races a start/stop merely lands in or
/// out of the session.
extern std::atomic<bool> g_trace_armed;
inline bool TraceArmed() {
  return g_trace_armed.load(std::memory_order_relaxed);
}

void EmitBegin(const char* category, const char* name);
void EmitEnd(const char* category, const char* name,
             const char* const* arg_names, const std::uint64_t* arg_values,
             int num_args);
}  // namespace internal

/// Begins a fresh trace session: clears any previous events/provenance,
/// re-arms every registered thread buffer at `options.buffer_events`
/// capacity and resets the timestamp epoch. Quiesce traced threads first.
void StartTracing(const TraceOptions& options);

/// Disarms tracing and releases all buffered events and provenance.
void StopTracing();

/// Whether a trace session is active.
bool TraceActive();

/// Snapshots every live and retired thread buffer plus the provenance
/// records, without disturbing the session. Threads are sorted by tid;
/// events within a thread are oldest-first.
TraceCollection CollectTrace();

/// Names the calling thread's track in the exported trace ("worker-3").
/// No-op unless a session is active.
void SetTraceThreadName(const std::string& name);

/// Records a point event on the calling thread's track.
void TraceInstant(const char* category, const char* name);
void TraceInstant(const char* category, const char* name,
                  const char* arg_name, std::uint64_t arg_value);

/// Records one sample of the process-wide counter track `name`.
void TraceCounter(const char* name, std::uint64_t value);

/// Appends one tag's provenance record to the session. No-op unless a
/// session is active.
void RecordTagProvenance(TagProvenance provenance);

/// RAII span: emits a begin event at construction and an end event (with
/// any accumulated args) at destruction. The armed decision is latched at
/// construction so a begin/end pair never splits across a session edge.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name)
      : armed_(internal::TraceArmed()), category_(category), name_(name) {
    if (armed_) internal::EmitBegin(category_, name_);
  }
  ~TraceSpan() {
    if (armed_) {
      internal::EmitEnd(category_, name_, arg_names_, arg_values_, num_args_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a key/value argument to the span's end event (merged into
  /// the span by trace viewers). At most kMaxTraceArgs stick; extras are
  /// ignored. `arg_name` must outlive the session.
  void AddArg(const char* arg_name, std::uint64_t value) {
    if (!armed_ || num_args_ >= kMaxTraceArgs) return;
    arg_names_[num_args_] = arg_name;
    arg_values_[num_args_] = value;
    ++num_args_;
  }

 private:
  bool armed_;
  const char* category_;
  const char* name_;
  int num_args_ = 0;
  const char* arg_names_[kMaxTraceArgs] = {};
  std::uint64_t arg_values_[kMaxTraceArgs] = {};
};

#else  // !RFIDCLEAN_TRACE_ENABLED

inline void StartTracing(const TraceOptions&) {}
inline void StopTracing() {}
inline bool TraceActive() { return false; }
inline TraceCollection CollectTrace() { return {}; }
inline void SetTraceThreadName(const std::string&) {}
inline void TraceInstant(const char*, const char*) {}
inline void TraceInstant(const char*, const char*, const char*,
                         std::uint64_t) {}
inline void TraceCounter(const char*, std::uint64_t) {}
inline void RecordTagProvenance(TagProvenance) {}

/// Zero-state stand-in so unwrapped `span.AddArg(...)` calls still compile
/// in trace-off builds (the RFID_TRACE_SPAN macro declares one of these).
class TraceSpan {
 public:
  constexpr TraceSpan() = default;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  void AddArg(const char*, std::uint64_t) {}
};

#endif  // RFIDCLEAN_TRACE_ENABLED

}  // namespace rfidclean::obs

#endif  // RFIDCLEAN_OBS_TRACE_H_
