#ifndef RFIDCLEAN_OBS_CLEANING_STATS_H_
#define RFIDCLEAN_OBS_CLEANING_STATS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

/// \file
/// Point-in-time aggregation of the pipeline metrics (obs/metrics.h) into a
/// value type that tools, benches and tests can snapshot, diff, check and
/// serialize. `Capture()` sums all thread sinks; quiesce worker threads
/// first (BatchCleaner joins its pool before returning) for exact totals.

namespace rfidclean::obs {

/// Aggregated pipeline metrics at one instant. All fields are process-wide
/// sums since start (or the last `Reset()`).
struct CleaningStats {
  std::uint64_t counters[kNumCounters] = {};
  double phase_millis[kNumPhases] = {};
  HistogramData dists[kNumDists];

  /// Sums every live + retired thread sink. All-zero when stats are
  /// compiled out (RFIDCLEAN_STATS=OFF).
  static CleaningStats Capture();

  /// Zeroes all sinks so the next Capture() covers a fresh window.
  static void Reset();

  std::uint64_t Get(Counter counter) const {
    return counters[static_cast<int>(counter)];
  }
  double Millis(Phase phase) const {
    return phase_millis[static_cast<int>(phase)];
  }
  const HistogramData& Hist(Dist dist) const {
    return dists[static_cast<int>(dist)];
  }

  /// Pointwise `this - earlier`, for windowed measurements around a phase.
  CleaningStats DeltaSince(const CleaningStats& earlier) const;

  /// Checks the cross-counter invariants documented in ALGORITHM.md §9
  /// (e.g. edges_killed + edges_kept == edges_built). Returns one message
  /// per violated invariant; empty means consistent. Always empty when
  /// stats are compiled out.
  std::vector<std::string> CheckInvariants() const;

  /// Serializes counters, phase times and histogram summaries as one JSON
  /// object (stable key order; counters as integers, times as doubles),
  /// indented by `indent` spaces. Layout documented in README "--stats".
  /// When `provenance` is non-null, the object additionally carries a
  /// "provenance" array of per-tag records (obs/trace_export.h layout).
  void WriteJson(std::ostream& os, int indent = 0,
                 const std::vector<TagProvenance>* provenance = nullptr) const;
};

/// Samples a fixed subset of the pipeline counters into trace counter
/// tracks (forward_nodes, forward_edges, backward_edges_killed,
/// batch_tags_cleaned, queue_steals), one point per call. Called at phase
/// boundaries (per cleaned tag, per build). No-op unless stats and tracing
/// are both compiled in and a trace session is active.
void TraceSampleCounterTracks();

/// Snake-case stable identifier for each enumerator, used as the JSON key.
const char* CounterName(Counter counter);
const char* PhaseName(Phase phase);
const char* DistName(Dist dist);

}  // namespace rfidclean::obs

#endif  // RFIDCLEAN_OBS_CLEANING_STATS_H_
