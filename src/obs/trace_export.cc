#include "obs/trace_export.h"

#include <string>

#include "common/strings.h"

namespace rfidclean::obs {
namespace {

/// Minimal JSON string escaping: quotes, backslashes and control bytes
/// (status strings can carry arbitrary parser messages).
std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string HexDigest(std::uint64_t digest) {
  return StrFormat("%016llx", static_cast<unsigned long long>(digest));
}

}  // namespace

void WriteProvenanceJson(const std::vector<TagProvenance>& provenance,
                         std::ostream& os, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  if (provenance.empty()) {
    os << "[]";
    return;
  }
  os << "[\n";
  for (std::size_t i = 0; i < provenance.size(); ++i) {
    const TagProvenance& record = provenance[i];
    os << pad << "  {\n";
    os << pad << "    \"tag\": " << record.tag << ",\n";
    os << pad << "    \"input_digest\": \"" << HexDigest(record.input_digest)
       << "\",\n";
    os << pad << "    \"constraint_digest\": \""
       << HexDigest(record.constraint_digest) << "\",\n";
    os << pad << "    \"graph_digest\": \"" << HexDigest(record.graph_digest)
       << "\",\n";
    os << pad << "    \"forward_millis\": "
       << StrFormat("%.3f", record.forward_millis) << ",\n";
    os << pad << "    \"backward_millis\": "
       << StrFormat("%.3f", record.backward_millis) << ",\n";
    os << pad << "    \"status\": \"" << EscapeJson(record.status) << "\"\n";
    os << pad << "  }" << (i + 1 < provenance.size() ? ",\n" : "\n");
  }
  os << pad << "]";
}

#if RFIDCLEAN_TRACE_ENABLED

namespace {

const char* PhOf(TraceEventType type) {
  switch (type) {
    case TraceEventType::kBegin: return "B";
    case TraceEventType::kEnd: return "E";
    case TraceEventType::kInstant: return "i";
    case TraceEventType::kCounter: return "C";
  }
  return "i";
}

void WriteEvent(std::ostream& os, const TraceEvent& event, int tid) {
  os << "{\"ph\": \"" << PhOf(event.type) << "\", \"pid\": 1, \"tid\": " << tid
     << ", \"ts\": "
     << StrFormat("%.3f", static_cast<double>(event.ts_nanos) / 1000.0)
     << ", \"cat\": \"" << EscapeJson(event.category ? event.category : "")
     << "\", \"name\": \"" << EscapeJson(event.name ? event.name : "") << '"';
  if (event.type == TraceEventType::kInstant) os << ", \"s\": \"t\"";
  if (event.num_args > 0) {
    os << ", \"args\": {";
    for (int i = 0; i < event.num_args; ++i) {
      if (i > 0) os << ", ";
      os << '"' << EscapeJson(event.arg_names[i] ? event.arg_names[i] : "")
         << "\": " << event.arg_values[i];
    }
    os << '}';
  }
  os << '}';
}

}  // namespace

void WriteChromeTrace(const TraceCollection& collection, std::ostream& os) {
  os << "{\n  \"traceEvents\": [\n";
  bool first = true;
  auto separate = [&] {
    if (!first) os << ",\n";
    first = false;
    os << "    ";
  };
  separate();
  os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", "
        "\"args\": {\"name\": \"rfidclean\"}}";
  for (const TraceThread& thread : collection.threads) {
    if (thread.name.empty()) continue;
    separate();
    os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << thread.tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << EscapeJson(thread.name) << "\"}}";
  }
  for (const TraceThread& thread : collection.threads) {
    for (const TraceEvent& event : thread.events) {
      separate();
      WriteEvent(os, event, thread.tid);
    }
  }
  os << "\n  ],\n";
  os << "  \"displayTimeUnit\": \"ms\",\n";
  os << "  \"otherData\": {\n";
  os << "    \"tool\": \"rfidclean\",\n";
  os << "    \"num_events\": " << collection.NumEvents() << ",\n";
  os << "    \"dropped_events\": " << collection.DroppedEvents() << "\n";
  os << "  },\n";
  os << "  \"provenance\": ";
  WriteProvenanceJson(collection.provenance, os, 2);
  os << "\n}\n";
}

#endif  // RFIDCLEAN_TRACE_ENABLED

}  // namespace rfidclean::obs
