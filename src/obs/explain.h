#ifndef RFIDCLEAN_OBS_EXPLAIN_H_
#define RFIDCLEAN_OBS_EXPLAIN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Decision-level attribution for the cleaning pipeline: *why* did
/// conditioning remove a candidate, an edge or a node, and how much
/// probability mass did each integrity constraint cost.
///
/// The metrics layer (obs/metrics.h) counts kills and the tracer
/// (obs/trace.h) times them; this layer records the decisions themselves.
/// Every kill is tagged with `{tag, timestamp, edge-or-node key, phase,
/// constraint, mass}` where the phase names the pipeline stage that made
/// the decision (preflight prune, forward candidate rejection, backward
/// zeroing, compaction strand) and the constraint names the Definition-3
/// check that failed. Mass is attributed at the *root cause*: the a-priori
/// probability that the killed decision removed from the interpretation
/// space, computed so the per-constraint masses plus the surviving source
/// mass sum to 1 for every cleaned tag (docs/ALGORITHM.md §14).
///
/// The recorder reuses the trace-sink architecture: per-thread event rings
/// that only their owner writes, folded into a retired list on thread exit,
/// armed/disarmed by a session-wide relaxed atomic. Per-tag summaries
/// (assembled by the attribution pass in core/work_graph.cc and finalized
/// by runtime/batch_cleaner) are appended under the registry mutex — one
/// append per cleaned tag, never per edge.
///
/// Configure with -DRFIDCLEAN_EXPLAIN=OFF to compile every probe to a
/// no-op (the build defines RFIDCLEAN_EXPLAIN_OFF): no recorder symbols
/// are emitted and cleaning output is byte-identical, exactly like
/// RFIDCLEAN_STATS and RFIDCLEAN_TRACE. With the recorder compiled in but
/// disarmed, every probe costs one relaxed load and a branch.
///
/// Statements that exist purely to feed the recorder are wrapped in
/// RFID_EXPLAIN(...) so disabled builds drop them entirely:
///
///   RFID_EXPLAIN(obs::RecordExplainEvent(event));

#if defined(RFIDCLEAN_EXPLAIN_OFF)
#define RFIDCLEAN_EXPLAIN_ENABLED 0
#define RFID_EXPLAIN(expr) ((void)0)
#else
#define RFIDCLEAN_EXPLAIN_ENABLED 1
#define RFID_EXPLAIN(expr) expr
#endif

namespace rfidclean::obs {

/// Explain-session configuration. Defined in all build modes so embedding
/// hooks (BatchOptions::explain) keep a stable ABI.
struct ExplainOptions {
  /// When set on an embedding hook, the runtime starts an explain session
  /// with these options if none is active yet.
  bool enabled = false;
  /// Ring capacity, in events, of each per-thread buffer (drop-oldest).
  std::size_t buffer_events = std::size_t{1} << 16;
  /// How many killed edges each per-tag summary retains, ranked by
  /// attributed mass (the "top-K killed edges" of the JSON report).
  std::size_t top_edges = 16;
};

/// Pipeline stage that made a kill decision.
enum class ExplainPhase : std::uint8_t {
  kPreflight,   ///< statically-dead candidate pruned before the build
  kForward,     ///< candidate rejected by the successor relation
  kBackward,    ///< edge/node zeroed: no surviving suffix downstream
  kCompaction,  ///< node stranded: unreachable from a surviving source
  kCount
};
inline constexpr int kNumExplainPhases = static_cast<int>(ExplainPhase::kCount);

/// Which integrity-constraint check (or structural condition) killed the
/// decision. The first three mirror the Definition-3 successor checks.
enum class ExplainConstraint : std::uint8_t {
  kUnreachable,   ///< DU: direct move between disconnected locations
  kTravelTime,    ///< TT: arrival earlier than the minimum travel time
  kLatency,       ///< TL: departure forced by the latency bound
  kInfeasible,    ///< no admissible continuation at all (structural)
  kPropagated,    ///< every continuation died downstream (backward sweep)
  kStranded,      ///< unreachable from a surviving source (compaction)
  kRenormalized,  ///< informational: per-tick filtered-mass delta, not a kill
  kCount
};
inline constexpr int kNumExplainConstraints =
    static_cast<int>(ExplainConstraint::kCount);

/// One recorded kill decision (or renormalization delta). `from_location`
/// is -1 for candidate/node-level decisions that have no source endpoint.
struct ExplainEvent {
  long long tag = 0;
  std::int32_t time = 0;
  std::int32_t from_location = -1;
  std::int32_t to_location = -1;
  ExplainPhase phase = ExplainPhase::kForward;
  ExplainConstraint constraint = ExplainConstraint::kInfeasible;
  /// Root-cause a-priori mass removed (see the header comment); for
  /// kPropagated events the forward mass reaching the dead edge (not
  /// additive with root causes); for kRenormalized the per-tick delta.
  double mass = 0.0;
};

/// Per-constraint rollup inside a tag summary.
struct ExplainConstraintTotal {
  std::uint64_t kills = 0;
  double mass = 0.0;  ///< root-cause a-priori mass (0 for non-root causes)
};

/// One timestamp of a tag's uncertainty-reduction series.
struct ExplainTickSummary {
  std::int32_t time = 0;
  std::uint32_t candidates = 0;  ///< a-priori candidates at this tick
  std::uint32_t killed = 0;      ///< candidates absent from the cleaned graph
  double mass_lost = 0.0;        ///< root-cause mass attributed at this tick
  double alpha_delta = 0.0;      ///< streaming filtered-mass delta (0 in batch)
};

/// One killed candidate (t, location): the answer to "why is location X
/// absent at time t". `phase`/`constraint` name the dominant (largest-mass)
/// cause among the decisions that removed it.
struct ExplainKilledCandidate {
  std::int32_t time = 0;
  std::int32_t location = -1;
  ExplainPhase phase = ExplainPhase::kForward;
  ExplainConstraint constraint = ExplainConstraint::kInfeasible;
  double mass = 0.0;
};

/// One killed edge, ranked by attributed mass in the per-tag top-K list.
struct ExplainKilledEdge {
  std::int32_t time = 0;  ///< timestamp of the target node
  std::int32_t from_location = -1;
  std::int32_t to_location = -1;
  ExplainPhase phase = ExplainPhase::kForward;
  ExplainConstraint constraint = ExplainConstraint::kInfeasible;
  double mass = 0.0;
};

/// Everything the explain layer knows about one cleaned tag. Assembled by
/// the attribution pass (core/work_graph.cc), finalized with status and
/// per-phase ppb splits, and appended via RecordTagExplain. Defined in all
/// build modes so the store codec (store/explain_codec.h) keeps one ABI.
struct ExplainTagSummary {
  long long tag = 0;
  std::string status;  ///< "ok" or the failure status string
  /// Scaled conditioning loss in parts-per-billion, split by phase; the two
  /// sum to the value the stats layer records across Dist::kMassLost*Ppb.
  std::uint64_t mass_lost_backward_ppb = 0;
  std::uint64_t mass_lost_compaction_ppb = 0;
  /// Unscaled a-priori source mass that survives conditioning, and the
  /// total root-cause mass attributed to kills: the two sum to ~1.
  double surviving_mass = 0.0;
  double attributed_mass = 0.0;
  std::uint64_t phase_kills[kNumExplainPhases] = {};
  ExplainConstraintTotal constraints[kNumExplainConstraints];
  std::vector<ExplainTickSummary> ticks;
  std::vector<ExplainKilledCandidate> killed_candidates;
  /// Count beyond the retention cap (0 means killed_candidates is exact).
  std::uint64_t killed_candidates_truncated = 0;
  std::vector<ExplainKilledEdge> top_edges;  ///< mass-descending, capped at K
};

/// Snapshot of one explain session: per-tag summaries (sorted by tag) plus
/// the merged raw event stream (grouped by tag, per-tag order preserved).
struct ExplainCollection {
  std::vector<ExplainTagSummary> tags;
  std::vector<ExplainEvent> events;
  std::uint64_t dropped_events = 0;

  const ExplainTagSummary* FindTag(long long tag) const {
    for (const ExplainTagSummary& summary : tags) {
      if (summary.tag == tag) return &summary;
    }
    return nullptr;
  }
};

/// Whether this build can record explain decisions (compile-time constant).
constexpr bool ExplainCompiledIn() { return RFIDCLEAN_EXPLAIN_ENABLED != 0; }

#if RFIDCLEAN_EXPLAIN_ENABLED

namespace internal {
/// Session-armed flag; same memory-order contract as the tracer's.
extern std::atomic<bool> g_explain_armed;
inline bool ExplainArmedRelaxed() {
  return g_explain_armed.load(std::memory_order_relaxed);
}
}  // namespace internal

/// Begins a fresh explain session: clears previous events and summaries and
/// re-arms every registered thread buffer. Quiesce instrumented threads
/// first (BatchCleaner joins its pool before returning).
void StartExplain(const ExplainOptions& options);

/// Disarms the recorder and releases all buffered state.
void StopExplain();

/// Whether an explain session is active.
inline bool ExplainArmed() { return internal::ExplainArmedRelaxed(); }

/// The active session's options (defaults when no session is active).
ExplainOptions ExplainSessionOptions();

/// Records one kill decision in the calling thread's ring. No-op unless a
/// session is active.
void RecordExplainEvent(const ExplainEvent& event);

/// Appends one tag's finished summary to the session. No-op unless a
/// session is active.
void RecordTagExplain(ExplainTagSummary summary);

/// Sets the tag id the calling thread is currently cleaning. The core
/// layers stamp this id into the events and summaries they record (they do
/// not know tag ids themselves); the batch runtime sets it before each
/// per-tag clean, single-tag paths leave the default 0.
void SetExplainTag(long long tag);

/// The calling thread's current tag id (0 outside a per-tag clean).
long long ExplainCurrentTag();

/// Snapshots every live and retired thread buffer plus the per-tag
/// summaries, without disturbing the session. Summaries are sorted by tag;
/// events are grouped by tag (per-tag recording order preserved), so the
/// collection is deterministic for any worker count.
ExplainCollection CollectExplain();

#else  // !RFIDCLEAN_EXPLAIN_ENABLED

inline void StartExplain(const ExplainOptions&) {}
inline void StopExplain() {}
inline bool ExplainArmed() { return false; }
inline ExplainOptions ExplainSessionOptions() { return {}; }
inline void RecordExplainEvent(const ExplainEvent&) {}
inline void RecordTagExplain(ExplainTagSummary) {}
inline void SetExplainTag(long long) {}
inline long long ExplainCurrentTag() { return 0; }
inline ExplainCollection CollectExplain() { return {}; }

#endif  // RFIDCLEAN_EXPLAIN_ENABLED

/// Snake-case stable identifiers used by the JSON report and the CLI.
/// Defined in all build modes (the store codec and CLI print them).
const char* ExplainPhaseName(ExplainPhase phase);
const char* ExplainConstraintName(ExplainConstraint constraint);

}  // namespace rfidclean::obs

#endif  // RFIDCLEAN_OBS_EXPLAIN_H_
