#include "obs/explain_export.h"

#if RFIDCLEAN_EXPLAIN_ENABLED

#include <cstdint>
#include <vector>

#include "common/strings.h"

namespace rfidclean::obs {
namespace {

struct Indent {
  int spaces;
};

std::ostream& operator<<(std::ostream& os, Indent indent) {
  for (int i = 0; i < indent.spaces; ++i) os.put(' ');
  return os;
}

std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Masses are printed with %.17g so the report round-trips doubles exactly:
/// byte-identical reports across worker counts are a tested contract.
std::string Mass(double value) { return StrFormat("%.17g", value); }

void WriteConstraintTotals(std::ostream& os,
                           const ExplainConstraintTotal* totals, Indent pad) {
  os << "{\n";
  for (int i = 0; i < kNumExplainConstraints; ++i) {
    os << Indent{pad.spaces + 2} << '"'
       << ExplainConstraintName(static_cast<ExplainConstraint>(i))
       << "\": {\"kills\": " << totals[i].kills
       << ", \"mass\": " << Mass(totals[i].mass) << '}'
       << (i + 1 < kNumExplainConstraints ? ",\n" : "\n");
  }
  os << pad << '}';
}

void WritePhaseKills(std::ostream& os, const std::uint64_t* kills,
                     Indent pad) {
  os << "{\n";
  for (int i = 0; i < kNumExplainPhases; ++i) {
    os << Indent{pad.spaces + 2} << '"'
       << ExplainPhaseName(static_cast<ExplainPhase>(i)) << "\": " << kills[i]
       << (i + 1 < kNumExplainPhases ? ",\n" : "\n");
  }
  os << pad << '}';
}

void WriteTimeline(std::ostream& os, const std::vector<ExplainTickSummary>& ticks,
                   Indent pad) {
  os << "[\n";
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    const ExplainTickSummary& tick = ticks[i];
    os << Indent{pad.spaces + 2} << "{\"time\": " << tick.time
       << ", \"candidates\": " << tick.candidates
       << ", \"killed\": " << tick.killed
       << ", \"mass_lost\": " << Mass(tick.mass_lost)
       << ", \"alpha_delta\": " << Mass(tick.alpha_delta) << '}'
       << (i + 1 < ticks.size() ? ",\n" : "\n");
  }
  os << pad << ']';
}

void WriteTag(std::ostream& os, const ExplainTagSummary& tag, Indent pad) {
  const Indent inner{pad.spaces + 2};
  std::uint64_t kills = 0;
  for (int i = 0; i < kNumExplainPhases; ++i) kills += tag.phase_kills[i];
  os << pad << "{\n";
  os << inner << "\"tag\": " << tag.tag << ",\n";
  os << inner << "\"status\": \"" << EscapeJson(tag.status) << "\",\n";
  os << inner << "\"kills\": " << kills << ",\n";
  os << inner << "\"surviving_mass\": " << Mass(tag.surviving_mass) << ",\n";
  os << inner << "\"attributed_mass\": " << Mass(tag.attributed_mass)
     << ",\n";
  os << inner
     << "\"mass_lost_backward_ppb\": " << tag.mass_lost_backward_ppb << ",\n";
  os << inner
     << "\"mass_lost_compaction_ppb\": " << tag.mass_lost_compaction_ppb
     << ",\n";
  os << inner << "\"by_constraint\": ";
  WriteConstraintTotals(os, tag.constraints, inner);
  os << ",\n";
  os << inner << "\"by_phase\": ";
  WritePhaseKills(os, tag.phase_kills, inner);
  os << ",\n";
  os << inner << "\"timeline\": ";
  WriteTimeline(os, tag.ticks, inner);
  os << ",\n";
  os << inner << "\"killed_candidates\": [\n";
  for (std::size_t i = 0; i < tag.killed_candidates.size(); ++i) {
    const ExplainKilledCandidate& killed = tag.killed_candidates[i];
    os << Indent{inner.spaces + 2} << "{\"time\": " << killed.time
       << ", \"location\": " << killed.location << ", \"phase\": \""
       << ExplainPhaseName(killed.phase) << "\", \"constraint\": \""
       << ExplainConstraintName(killed.constraint)
       << "\", \"mass\": " << Mass(killed.mass) << '}'
       << (i + 1 < tag.killed_candidates.size() ? ",\n" : "\n");
  }
  os << inner << "],\n";
  os << inner << "\"killed_candidates_truncated\": "
     << tag.killed_candidates_truncated << ",\n";
  os << inner << "\"top_killed_edges\": [\n";
  for (std::size_t i = 0; i < tag.top_edges.size(); ++i) {
    const ExplainKilledEdge& edge = tag.top_edges[i];
    os << Indent{inner.spaces + 2} << "{\"time\": " << edge.time
       << ", \"from\": " << edge.from_location << ", \"to\": "
       << edge.to_location << ", \"phase\": \""
       << ExplainPhaseName(edge.phase) << "\", \"constraint\": \""
       << ExplainConstraintName(edge.constraint)
       << "\", \"mass\": " << Mass(edge.mass) << '}'
       << (i + 1 < tag.top_edges.size() ? ",\n" : "\n");
  }
  os << inner << "]\n";
  os << pad << '}';
}

}  // namespace

void WriteExplainReport(const ExplainCollection& collection, std::ostream& os,
                        int indent) {
  const Indent pad{indent};
  const Indent inner{indent + 2};

  // Session totals, summed across tags. The ppb splits are additive across
  // tags on purpose: they mirror the sum the stats layer accumulates in its
  // Dist::kMassLost*Ppb histograms, which obs_stats_test cross-checks.
  ExplainConstraintTotal constraints[kNumExplainConstraints];
  std::uint64_t phases[kNumExplainPhases] = {};
  std::uint64_t kills = 0;
  std::uint64_t backward_ppb = 0;
  std::uint64_t compaction_ppb = 0;
  double surviving = 0.0;
  double attributed = 0.0;
  std::vector<ExplainTickSummary> timeline;
  for (const ExplainTagSummary& tag : collection.tags) {
    for (int i = 0; i < kNumExplainConstraints; ++i) {
      constraints[i].kills += tag.constraints[i].kills;
      constraints[i].mass += tag.constraints[i].mass;
    }
    for (int i = 0; i < kNumExplainPhases; ++i) {
      phases[i] += tag.phase_kills[i];
      kills += tag.phase_kills[i];
    }
    backward_ppb += tag.mass_lost_backward_ppb;
    compaction_ppb += tag.mass_lost_compaction_ppb;
    surviving += tag.surviving_mass;
    attributed += tag.attributed_mass;
    for (const ExplainTickSummary& tick : tag.ticks) {
      const std::size_t index = static_cast<std::size_t>(tick.time);
      if (timeline.size() <= index) {
        timeline.resize(index + 1);
        timeline[index].time = tick.time;
      }
      timeline[index].candidates += tick.candidates;
      timeline[index].killed += tick.killed;
      timeline[index].mass_lost += tick.mass_lost;
      timeline[index].alpha_delta += tick.alpha_delta;
    }
  }

  os << "{\n";
  os << inner << "\"explain_format_version\": " << kExplainFormatVersion
     << ",\n";
  os << inner << "\"status\": \"ok\",\n";
  os << inner << "\"explain_enabled\": true,\n";
  os << inner << "\"num_tags\": " << collection.tags.size() << ",\n";
  os << inner << "\"dropped_events\": " << collection.dropped_events << ",\n";
  os << inner << "\"totals\": {\n";
  const Indent tot{indent + 4};
  os << tot << "\"kills\": " << kills << ",\n";
  os << tot << "\"surviving_mass\": " << Mass(surviving) << ",\n";
  os << tot << "\"attributed_mass\": " << Mass(attributed) << ",\n";
  os << tot << "\"mass_lost_backward_ppb\": " << backward_ppb << ",\n";
  os << tot << "\"mass_lost_compaction_ppb\": " << compaction_ppb << ",\n";
  os << tot << "\"by_constraint\": ";
  WriteConstraintTotals(os, constraints, tot);
  os << ",\n";
  os << tot << "\"by_phase\": ";
  WritePhaseKills(os, phases, tot);
  os << "\n" << inner << "},\n";
  os << inner << "\"timeline\": ";
  WriteTimeline(os, timeline, inner);
  os << ",\n";
  os << inner << "\"tags\": [\n";
  for (std::size_t i = 0; i < collection.tags.size(); ++i) {
    WriteTag(os, collection.tags[i], Indent{indent + 4});
    os << (i + 1 < collection.tags.size() ? ",\n" : "\n");
  }
  os << inner << "]\n";
  os << pad << '}';
}

}  // namespace rfidclean::obs

#endif  // RFIDCLEAN_EXPLAIN_ENABLED
