#include "obs/trace.h"

#if RFIDCLEAN_TRACE_ENABLED

#include <algorithm>
#include <chrono>
#include <mutex>
#include <utility>

namespace rfidclean::obs {
namespace {

std::uint64_t SteadyNowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Session epoch (steady-clock nanos at StartTracing). Read without the
/// registry lock on the hot path; written only while arming a session.
std::atomic<std::uint64_t> g_epoch_nanos{0};

/// Per-thread event ring. Only its owning thread writes events; arming,
/// collection and teardown touch it under the registry mutex while the
/// owning thread is quiesced (same contract as the metric sinks).
struct TraceSink {
  std::vector<TraceEvent> ring;
  std::size_t next = 0;          ///< write cursor
  std::uint64_t written = 0;     ///< total events ever recorded
  int tid = 0;
  std::string name;

  void Arm(std::size_t capacity) {
    ring.assign(capacity, TraceEvent{});
    next = 0;
    written = 0;
  }

  void Disarm() {
    ring.clear();
    ring.shrink_to_fit();
    next = 0;
    written = 0;
  }

  void Append(const TraceEvent& event) {
    if (ring.empty()) return;  // armed flag raced a stop; drop quietly
    ring[next] = event;
    ++next;
    if (next == ring.size()) next = 0;
    ++written;
  }

  std::uint64_t DroppedEvents() const {
    return written > ring.size() ? written - ring.size() : 0;
  }

  /// Oldest-first copy of the ring's surviving events.
  TraceThread Linearize() const {
    TraceThread thread;
    thread.tid = tid;
    thread.name = name;
    thread.dropped_events = DroppedEvents();
    const std::size_t kept =
        written < ring.size() ? static_cast<std::size_t>(written) : ring.size();
    thread.events.reserve(kept);
    const std::size_t start = written > ring.size() ? next : 0;
    for (std::size_t i = 0; i < kept; ++i) {
      thread.events.push_back(ring[(start + i) % ring.size()]);
    }
    return thread;
  }
};

/// Process-wide registry of live sinks plus linearized buffers of threads
/// that exited mid-session (BatchCleaner workers are short-lived; their
/// tracks must outlive them).
struct Registry {
  std::mutex mutex;
  std::vector<TraceSink*> live;
  std::vector<TraceThread> retired;
  std::vector<TagProvenance> provenance;
  TraceOptions options;
  int next_tid = 0;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives TLS dtors
  return *registry;
}

/// Owns one thread's sink; constructor registers (arming the ring if a
/// session is active), destructor folds surviving events into `retired`
/// and deregisters.
struct TraceSinkOwner {
  TraceSink sink;

  TraceSinkOwner() {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    sink.tid = registry.next_tid++;
    if (internal::TraceArmed()) sink.Arm(registry.options.buffer_events);
    registry.live.push_back(&sink);
  }

  ~TraceSinkOwner() {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    if (internal::TraceArmed() && sink.written > 0) {
      registry.retired.push_back(sink.Linearize());
    }
    for (std::size_t i = 0; i < registry.live.size(); ++i) {
      if (registry.live[i] == &sink) {
        registry.live[i] = registry.live.back();
        registry.live.pop_back();
        break;
      }
    }
  }
};

TraceSink& LocalSink() {
  thread_local TraceSinkOwner owner;
  return owner.sink;
}

std::uint64_t SessionNanos() {
  const std::uint64_t epoch = g_epoch_nanos.load(std::memory_order_relaxed);
  const std::uint64_t now = SteadyNowNanos();
  return now > epoch ? now - epoch : 0;
}

TraceEvent MakeEvent(TraceEventType type, const char* category,
                     const char* name) {
  TraceEvent event;
  event.type = type;
  event.category = category;
  event.name = name;
  event.ts_nanos = SessionNanos();
  return event;
}

}  // namespace

namespace internal {

std::atomic<bool> g_trace_armed{false};

void EmitBegin(const char* category, const char* name) {
  LocalSink().Append(MakeEvent(TraceEventType::kBegin, category, name));
}

void EmitEnd(const char* category, const char* name,
             const char* const* arg_names, const std::uint64_t* arg_values,
             int num_args) {
  TraceEvent event = MakeEvent(TraceEventType::kEnd, category, name);
  if (num_args > kMaxTraceArgs) num_args = kMaxTraceArgs;
  event.num_args = static_cast<std::uint8_t>(num_args);
  for (int i = 0; i < num_args; ++i) {
    event.arg_names[i] = arg_names[i];
    event.arg_values[i] = arg_values[i];
  }
  LocalSink().Append(event);
}

}  // namespace internal

void StartTracing(const TraceOptions& options) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.options = options;
  if (registry.options.buffer_events < 8) registry.options.buffer_events = 8;
  registry.retired.clear();
  registry.provenance.clear();
  for (TraceSink* sink : registry.live) {
    sink->Arm(registry.options.buffer_events);
  }
  g_epoch_nanos.store(SteadyNowNanos(), std::memory_order_relaxed);
  internal::g_trace_armed.store(true, std::memory_order_release);
}

void StopTracing() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  internal::g_trace_armed.store(false, std::memory_order_release);
  registry.retired.clear();
  registry.provenance.clear();
  for (TraceSink* sink : registry.live) sink->Disarm();
}

bool TraceActive() { return internal::TraceArmed(); }

TraceCollection CollectTrace() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  TraceCollection collection;
  collection.threads = registry.retired;
  for (const TraceSink* sink : registry.live) {
    if (sink->written > 0 || !sink->name.empty()) {
      collection.threads.push_back(sink->Linearize());
    }
  }
  std::sort(collection.threads.begin(), collection.threads.end(),
            [](const TraceThread& a, const TraceThread& b) {
              return a.tid < b.tid;
            });
  collection.provenance = registry.provenance;
  return collection;
}

void SetTraceThreadName(const std::string& name) {
  if (!internal::TraceArmed()) return;
  TraceSink& sink = LocalSink();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  sink.name = name;
}

void TraceInstant(const char* category, const char* name) {
  if (!internal::TraceArmed()) return;
  LocalSink().Append(MakeEvent(TraceEventType::kInstant, category, name));
}

void TraceInstant(const char* category, const char* name,
                  const char* arg_name, std::uint64_t arg_value) {
  if (!internal::TraceArmed()) return;
  TraceEvent event = MakeEvent(TraceEventType::kInstant, category, name);
  event.num_args = 1;
  event.arg_names[0] = arg_name;
  event.arg_values[0] = arg_value;
  LocalSink().Append(event);
}

void TraceCounter(const char* name, std::uint64_t value) {
  if (!internal::TraceArmed()) return;
  TraceEvent event = MakeEvent(TraceEventType::kCounter, "counters", name);
  event.num_args = 1;
  event.arg_names[0] = "value";
  event.arg_values[0] = value;
  LocalSink().Append(event);
}

void RecordTagProvenance(TagProvenance provenance) {
  if (!internal::TraceArmed()) return;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.provenance.push_back(std::move(provenance));
}

}  // namespace rfidclean::obs

#endif  // RFIDCLEAN_TRACE_ENABLED
