#include "obs/explain.h"

#include "common/check.h"

namespace rfidclean::obs {

// Name tables live in every build mode: the store codec validates enum
// ranges against them and the CLI prints them for persisted summaries even
// when the recorder itself is compiled out.
const char* ExplainPhaseName(ExplainPhase phase) {
  switch (phase) {
    case ExplainPhase::kPreflight: return "preflight";
    case ExplainPhase::kForward: return "forward";
    case ExplainPhase::kBackward: return "backward";
    case ExplainPhase::kCompaction: return "compaction";
    case ExplainPhase::kCount: break;
  }
  RFID_CHECK(false);  // unreachable: exhaustive switch
  return "";
}

const char* ExplainConstraintName(ExplainConstraint constraint) {
  switch (constraint) {
    case ExplainConstraint::kUnreachable: return "unreachable";
    case ExplainConstraint::kTravelTime: return "travel_time";
    case ExplainConstraint::kLatency: return "latency";
    case ExplainConstraint::kInfeasible: return "infeasible";
    case ExplainConstraint::kPropagated: return "propagated";
    case ExplainConstraint::kStranded: return "stranded";
    case ExplainConstraint::kRenormalized: return "renormalized";
    case ExplainConstraint::kCount: break;
  }
  RFID_CHECK(false);  // unreachable: exhaustive switch
  return "";
}

}  // namespace rfidclean::obs

#if RFIDCLEAN_EXPLAIN_ENABLED

#include <algorithm>
#include <mutex>
#include <utility>

namespace rfidclean::obs {
namespace {

/// Per-thread event ring. Only its owning thread writes events; arming,
/// collection and teardown touch it under the registry mutex while the
/// owning thread is quiesced (same contract as the trace sinks).
struct ExplainSink {
  std::vector<ExplainEvent> ring;
  std::size_t next = 0;       ///< write cursor
  std::uint64_t written = 0;  ///< total events ever recorded

  void Arm(std::size_t capacity) {
    ring.assign(capacity, ExplainEvent{});
    next = 0;
    written = 0;
  }

  void Disarm() {
    ring.clear();
    ring.shrink_to_fit();
    next = 0;
    written = 0;
  }

  void Append(const ExplainEvent& event) {
    if (ring.empty()) return;  // armed flag raced a stop; drop quietly
    ring[next] = event;
    ++next;
    if (next == ring.size()) next = 0;
    ++written;
  }

  std::uint64_t DroppedEvents() const {
    return written > ring.size() ? written - ring.size() : 0;
  }

  /// Appends the ring's surviving events, oldest first, to `out`.
  void LinearizeInto(std::vector<ExplainEvent>* out) const {
    const std::size_t kept =
        written < ring.size() ? static_cast<std::size_t>(written) : ring.size();
    const std::size_t start = written > ring.size() ? next : 0;
    for (std::size_t i = 0; i < kept; ++i) {
      out->push_back(ring[(start + i) % ring.size()]);
    }
  }
};

/// Process-wide registry of live sinks plus the folded events of threads
/// that exited mid-session, and the per-tag summaries.
struct Registry {
  std::mutex mutex;
  std::vector<ExplainSink*> live;
  std::vector<ExplainEvent> retired_events;
  std::uint64_t retired_dropped = 0;
  std::vector<ExplainTagSummary> tags;
  ExplainOptions options;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives TLS dtors
  return *registry;
}

/// Owns one thread's sink; constructor registers (arming the ring if a
/// session is active), destructor folds surviving events into the retired
/// stream and deregisters.
struct ExplainSinkOwner {
  ExplainSink sink;

  ExplainSinkOwner() {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    if (internal::ExplainArmedRelaxed()) {
      sink.Arm(registry.options.buffer_events);
    }
    registry.live.push_back(&sink);
  }

  ~ExplainSinkOwner() {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    if (internal::ExplainArmedRelaxed() && sink.written > 0) {
      sink.LinearizeInto(&registry.retired_events);
      registry.retired_dropped += sink.DroppedEvents();
    }
    for (std::size_t i = 0; i < registry.live.size(); ++i) {
      if (registry.live[i] == &sink) {
        registry.live[i] = registry.live.back();
        registry.live.pop_back();
        break;
      }
    }
  }
};

ExplainSink& LocalSink() {
  thread_local ExplainSinkOwner owner;
  return owner.sink;
}

}  // namespace

namespace internal {
std::atomic<bool> g_explain_armed{false};
}  // namespace internal

void StartExplain(const ExplainOptions& options) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.options = options;
  if (registry.options.buffer_events < 8) registry.options.buffer_events = 8;
  if (registry.options.top_edges < 1) registry.options.top_edges = 1;
  registry.retired_events.clear();
  registry.retired_dropped = 0;
  registry.tags.clear();
  for (ExplainSink* sink : registry.live) {
    sink->Arm(registry.options.buffer_events);
  }
  internal::g_explain_armed.store(true, std::memory_order_release);
}

void StopExplain() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  internal::g_explain_armed.store(false, std::memory_order_release);
  registry.retired_events.clear();
  registry.retired_dropped = 0;
  registry.tags.clear();
  for (ExplainSink* sink : registry.live) sink->Disarm();
}

ExplainOptions ExplainSessionOptions() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.options;
}

void RecordExplainEvent(const ExplainEvent& event) {
  if (!internal::ExplainArmedRelaxed()) return;
  LocalSink().Append(event);
}

void RecordTagExplain(ExplainTagSummary summary) {
  if (!internal::ExplainArmedRelaxed()) return;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.tags.push_back(std::move(summary));
}

namespace {
thread_local long long t_explain_tag = 0;
}  // namespace

void SetExplainTag(long long tag) { t_explain_tag = tag; }

long long ExplainCurrentTag() { return t_explain_tag; }

ExplainCollection CollectExplain() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  ExplainCollection collection;
  collection.tags = registry.tags;
  std::sort(collection.tags.begin(), collection.tags.end(),
            [](const ExplainTagSummary& a, const ExplainTagSummary& b) {
              return a.tag < b.tag;
            });
  collection.events = registry.retired_events;
  collection.dropped_events = registry.retired_dropped;
  for (const ExplainSink* sink : registry.live) {
    if (sink->written > 0) {
      sink->LinearizeInto(&collection.events);
      collection.dropped_events += sink->DroppedEvents();
    }
  }
  // Each tag is cleaned by exactly one worker, so grouping by tag while
  // preserving within-stream order makes the collection independent of the
  // worker count and of the tag->worker assignment.
  std::stable_sort(collection.events.begin(), collection.events.end(),
                   [](const ExplainEvent& a, const ExplainEvent& b) {
                     return a.tag < b.tag;
                   });
  return collection;
}

}  // namespace rfidclean::obs

#endif  // RFIDCLEAN_EXPLAIN_ENABLED
