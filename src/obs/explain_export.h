#ifndef RFIDCLEAN_OBS_EXPLAIN_EXPORT_H_
#define RFIDCLEAN_OBS_EXPLAIN_EXPORT_H_

#include <ostream>

#include "obs/explain.h"

/// \file
/// Versioned JSON report for explain collections (obs/explain.h): session
/// totals (per-constraint kill counts and root-cause masses, per-phase kill
/// counts, ppb splits), the per-timestamp uncertainty-reduction timeline,
/// and one record per tag with its killed-candidate list and top-K killed
/// edges. Schema documented in docs/FORMATS.md ("explain report"). The
/// output is deterministic for a given input set and worker count
/// independent (cross-checked by the differential battery).

namespace rfidclean::obs {

/// Report schema version (the "explain_format_version" field).
inline constexpr int kExplainFormatVersion = 1;

#if RFIDCLEAN_EXPLAIN_ENABLED

/// Writes `collection` as one JSON object, indented by `indent` spaces.
/// Entries of the killed-candidate and top-edge arrays are one line each so
/// the report stays greppable (`rfidclean explain --report` relies on it).
void WriteExplainReport(const ExplainCollection& collection, std::ostream& os,
                        int indent = 0);

#else

inline void WriteExplainReport(const ExplainCollection&, std::ostream&,
                               int = 0) {}

#endif  // RFIDCLEAN_EXPLAIN_ENABLED

}  // namespace rfidclean::obs

#endif  // RFIDCLEAN_OBS_EXPLAIN_EXPORT_H_
