#include "obs/cleaning_stats.h"

#include <cinttypes>
#include <cstdio>

#include "common/check.h"
#include "common/strings.h"
#include "obs/trace_export.h"

namespace rfidclean::obs {
namespace {

struct Indent {
  int spaces;
};

std::ostream& operator<<(std::ostream& os, Indent indent) {
  for (int i = 0; i < indent.spaces; ++i) os.put(' ');
  return os;
}

void WriteHistogram(std::ostream& os, const HistogramData& h, Indent pad) {
  os << "{\n";
  os << pad << "  \"count\": " << h.count << ",\n";
  os << pad << "  \"sum\": " << h.sum << ",\n";
  os << pad << "  \"max\": " << h.max << ",\n";
  os << pad << "  \"mean\": " << StrFormat("%.3f", h.Mean()) << ",\n";
  // Emit buckets up to the last non-empty one; log2 buckets beyond the max
  // observed value are always zero.
  int last = -1;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (h.buckets[i] > 0) last = i;
  }
  os << pad << "  \"log2_buckets\": [";
  for (int i = 0; i <= last; ++i) {
    if (i > 0) os << ", ";
    os << h.buckets[i];
  }
  os << "]\n" << pad << "}";
}

}  // namespace

const char* CounterName(Counter counter) {
  switch (counter) {
    case Counter::kIoRowsParsed: return "io_rows_parsed";
    case Counter::kIoRowsRejected: return "io_rows_rejected";
    case Counter::kForwardLayers: return "forward_layers";
    case Counter::kForwardNodes: return "forward_nodes";
    case Counter::kForwardEdges: return "forward_edges";
    case Counter::kForwardExpansions: return "forward_expansions";
    case Counter::kForwardMemoHits: return "forward_memo_hits";
    case Counter::kForwardKeysInterned: return "forward_keys_interned";
    case Counter::kStreamAlphaUnderflows: return "stream_alpha_underflows";
    case Counter::kKeyInternCalls: return "key_intern_calls";
    case Counter::kKeyProbeSteps: return "key_probe_steps";
    case Counter::kBackwardEdgesBuilt: return "backward_edges_built";
    case Counter::kBackwardEdgesKilled: return "backward_edges_killed";
    case Counter::kBackwardEdgesKept: return "backward_edges_kept";
    case Counter::kBackwardNodesDead: return "backward_nodes_dead";
    case Counter::kBackwardRenormPasses: return "backward_renorm_passes";
    case Counter::kBatchTagsCleaned: return "batch_tags_cleaned";
    case Counter::kBatchTagsFailedPrecondition:
      return "batch_tags_failed_precondition";
    case Counter::kBatchTagsInvalidArgument:
      return "batch_tags_invalid_argument";
    case Counter::kBatchTagsInternalError: return "batch_tags_internal_error";
    case Counter::kBatchArenaReuses: return "batch_arena_reuses";
    case Counter::kBatchArenaColdStarts: return "batch_arena_cold_starts";
    case Counter::kQueuePopsLocal: return "queue_pops_local";
    case Counter::kQueueSteals: return "queue_steals";
    case Counter::kPreflightNodesPruned: return "preflight_nodes_pruned";
    case Counter::kPreflightEdgesPruned: return "preflight_edges_pruned";
    case Counter::kPreflightTagsDoomed: return "preflight_tags_doomed";
    case Counter::kStoreBlobsEncoded: return "store_blobs_encoded";
    case Counter::kStoreBytesEncoded: return "store_bytes_encoded";
    case Counter::kStoreBlobsDecoded: return "store_blobs_decoded";
    case Counter::kStoreBytesDecoded: return "store_bytes_decoded";
    case Counter::kStoreCrcFailures: return "store_crc_failures";
    case Counter::kCount: break;
  }
  RFID_CHECK(false);  // unreachable: exhaustive switch
  return "";
}

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kForward: return "forward_millis";
    case Phase::kBackward: return "backward_millis";
    case Phase::kIoParse: return "io_parse_millis";
    case Phase::kTagClean: return "tag_clean_millis";
    case Phase::kPreflight: return "preflight_millis";
    case Phase::kStoreEncode: return "store_encode_millis";
    case Phase::kStoreDecode: return "store_decode_millis";
    case Phase::kCount: break;
  }
  RFID_CHECK(false);  // unreachable: exhaustive switch
  return "";
}

const char* DistName(Dist dist) {
  switch (dist) {
    case Dist::kLayerWidth: return "layer_width";
    case Dist::kTagMicros: return "tag_micros";
    case Dist::kKeyProbeMax: return "key_probe_max";
    case Dist::kKeyOccupancyPct: return "key_occupancy_pct";
    case Dist::kMassLostBackwardPpb: return "mass_lost_backward_ppb";
    case Dist::kMassLostCompactionPpb: return "mass_lost_compaction_ppb";
    case Dist::kCount: break;
  }
  RFID_CHECK(false);  // unreachable: exhaustive switch
  return "";
}

CleaningStats CleaningStats::Capture() {
  CleaningStats stats;
  internal::SnapshotInto(stats.counters, stats.phase_millis, stats.dists);
  return stats;
}

void CleaningStats::Reset() { internal::ResetAll(); }

CleaningStats CleaningStats::DeltaSince(const CleaningStats& earlier) const {
  CleaningStats delta;
  for (int i = 0; i < kNumCounters; ++i) {
    delta.counters[i] = counters[i] - earlier.counters[i];
  }
  for (int i = 0; i < kNumPhases; ++i) {
    delta.phase_millis[i] = phase_millis[i] - earlier.phase_millis[i];
  }
  // Histograms are monotone too (count/sum/max/buckets only grow), but max
  // is not subtractable; a delta keeps the later window's max as an upper
  // bound on the window's true max.
  for (int i = 0; i < kNumDists; ++i) {
    delta.dists[i].count = dists[i].count - earlier.dists[i].count;
    delta.dists[i].sum = dists[i].sum - earlier.dists[i].sum;
    delta.dists[i].max = dists[i].max;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      delta.dists[i].buckets[b] =
          dists[i].buckets[b] - earlier.dists[i].buckets[b];
    }
  }
  return delta;
}

std::vector<std::string> CleaningStats::CheckInvariants() const {
  std::vector<std::string> violations;
  if (!Enabled()) return violations;
  auto require = [&](bool ok, const std::string& message) {
    if (!ok) violations.push_back(message);
  };
  auto eq = [&](Counter lhs_a, Counter lhs_b, Counter rhs) {
    const std::uint64_t sum = Get(lhs_a) + Get(lhs_b);
    require(sum == Get(rhs),
            StrFormat("%s (%llu) + %s (%llu) != %s (%llu)",
                      CounterName(lhs_a),
                      static_cast<unsigned long long>(Get(lhs_a)),
                      CounterName(lhs_b),
                      static_cast<unsigned long long>(Get(lhs_b)),
                      CounterName(rhs),
                      static_cast<unsigned long long>(Get(rhs))));
  };
  // Every edge entering conditioning is either killed or kept.
  eq(Counter::kBackwardEdgesKilled, Counter::kBackwardEdgesKept,
     Counter::kBackwardEdgesBuilt);
  // Conditioning sees exactly the edges the forward phase built.
  require(Get(Counter::kBackwardEdgesBuilt) == Get(Counter::kForwardEdges),
          StrFormat("backward_edges_built (%llu) != forward_edges (%llu)",
                    static_cast<unsigned long long>(
                        Get(Counter::kBackwardEdgesBuilt)),
                    static_cast<unsigned long long>(
                        Get(Counter::kForwardEdges))));
  // Interning happens only through NodeKeyArena::Intern, and an open-
  // addressing lookup always probes at least once.
  require(Get(Counter::kForwardKeysInterned) <= Get(Counter::kKeyInternCalls),
          "forward_keys_interned exceeds key_intern_calls");
  require(Get(Counter::kKeyProbeSteps) >= Get(Counter::kKeyInternCalls),
          "key_probe_steps below key_intern_calls");
  // Layer-width samples correspond one-to-one with recorded layers, and the
  // widths sum to the node total.
  require(Hist(Dist::kLayerWidth).count == Get(Counter::kForwardLayers),
          "layer_width sample count != forward_layers");
  require(Hist(Dist::kLayerWidth).sum == Get(Counter::kForwardNodes),
          "layer_width sample sum != forward_nodes");
  // Every conditioning pass samples both per-phase mass-loss splits.
  require(Hist(Dist::kMassLostBackwardPpb).count ==
              Hist(Dist::kMassLostCompactionPpb).count,
          "mass_lost_backward_ppb sample count != "
          "mass_lost_compaction_ppb sample count");
  // Every tag that entered the batch runtime got its arena provisioned
  // exactly once (reused hints or a cold start) and landed in exactly one
  // outcome bucket.
  const std::uint64_t outcomes =
      Get(Counter::kBatchTagsCleaned) +
      Get(Counter::kBatchTagsFailedPrecondition) +
      Get(Counter::kBatchTagsInvalidArgument) +
      Get(Counter::kBatchTagsInternalError);
  const std::uint64_t prepared = Get(Counter::kBatchArenaReuses) +
                                 Get(Counter::kBatchArenaColdStarts);
  require(prepared == outcomes,
          StrFormat("batch_arena_reuses + batch_arena_cold_starts (%llu) != "
                    "batch tag outcomes (%llu)",
                    static_cast<unsigned long long>(prepared),
                    static_cast<unsigned long long>(outcomes)));
  return violations;
}

void TraceSampleCounterTracks() {
#if RFIDCLEAN_STATS_ENABLED && RFIDCLEAN_TRACE_ENABLED
  if (!TraceActive()) return;
  const CleaningStats stats = CleaningStats::Capture();
  TraceCounter("forward_nodes", stats.Get(Counter::kForwardNodes));
  TraceCounter("forward_edges", stats.Get(Counter::kForwardEdges));
  TraceCounter("backward_edges_killed",
               stats.Get(Counter::kBackwardEdgesKilled));
  TraceCounter("batch_tags_cleaned", stats.Get(Counter::kBatchTagsCleaned));
  TraceCounter("queue_steals", stats.Get(Counter::kQueueSteals));
#endif
}

void CleaningStats::WriteJson(std::ostream& os, int indent,
                              const std::vector<TagProvenance>* provenance)
    const {
  const Indent pad{indent};
  const Indent inner{indent + 2};
  os << "{\n";
  os << inner << "\"stats_enabled\": " << (Enabled() ? "true" : "false")
     << ",\n";
  os << inner << "\"counters\": {\n";
  for (int i = 0; i < kNumCounters; ++i) {
    os << Indent{indent + 4} << '"'
       << CounterName(static_cast<Counter>(i)) << "\": " << counters[i]
       << (i + 1 < kNumCounters ? ",\n" : "\n");
  }
  os << inner << "},\n";
  os << inner << "\"phases\": {\n";
  for (int i = 0; i < kNumPhases; ++i) {
    os << Indent{indent + 4} << '"' << PhaseName(static_cast<Phase>(i))
       << "\": " << StrFormat("%.3f", phase_millis[i])
       << (i + 1 < kNumPhases ? ",\n" : "\n");
  }
  os << inner << "},\n";
  os << inner << "\"histograms\": {\n";
  for (int i = 0; i < kNumDists; ++i) {
    os << Indent{indent + 4} << '"' << DistName(static_cast<Dist>(i))
       << "\": ";
    WriteHistogram(os, dists[i], Indent{indent + 4});
    os << (i + 1 < kNumDists ? ",\n" : "\n");
  }
  os << inner << (provenance != nullptr ? "},\n" : "}\n");
  if (provenance != nullptr) {
    os << inner << "\"provenance\": ";
    WriteProvenanceJson(*provenance, os, indent + 2);
    os << "\n";
  }
  os << pad << "}";
}

}  // namespace rfidclean::obs
