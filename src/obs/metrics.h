#ifndef RFIDCLEAN_OBS_METRICS_H_
#define RFIDCLEAN_OBS_METRICS_H_

#include <cstddef>
#include <cstdint>

#include "common/stopwatch.h"

/// \file
/// Low-overhead runtime metrics for the cleaning pipeline.
///
/// Every instrumentation point increments a plain (non-atomic) counter in a
/// thread-local sink; sinks register themselves in a process-wide registry
/// and `Snapshot()` sums live sinks plus the folded totals of exited
/// threads under one mutex, so the hot path never synchronizes. Hot loops
/// (per-edge, per-intern) accumulate in locals or in object members and
/// flush once per layer or per build — a probe costs one or two register
/// adds, never a TLS lookup per edge.
///
/// Configure with -DRFIDCLEAN_STATS=OFF to compile every probe to a no-op
/// (the build defines RFIDCLEAN_STATS_OFF); results are bit-identical
/// either way, since the probes only observe.
///
/// Wrap statements that exist purely to feed a metric in RFID_STATS(...)
/// so disabled builds drop them entirely:
///
///   RFID_STATS(obs::Add(obs::Counter::kForwardLayers));
///   RFID_STATS(++probe_steps_);

#if defined(RFIDCLEAN_STATS_OFF)
#define RFIDCLEAN_STATS_ENABLED 0
#define RFID_STATS(expr) ((void)0)
#else
#define RFIDCLEAN_STATS_ENABLED 1
#define RFID_STATS(expr) expr
#endif

namespace rfidclean::obs {

/// Monotonic event counters. Each enumerator is one aggregated uint64; the
/// semantics (and the invariants tying them together) are documented in
/// docs/ALGORITHM.md §9 and CounterName().
enum class Counter : std::uint8_t {
  // io layer (readings_io, building_io).
  kIoRowsParsed,     ///< data rows/lines accepted by a text parser
  kIoRowsRejected,   ///< rows/lines that produced a parse error

  // Forward phase (core/forward.cc).
  kForwardLayers,        ///< layers recorded (sources + expansions)
  kForwardNodes,         ///< work-graph nodes materialized
  kForwardEdges,         ///< work-graph edges materialized
  kForwardExpansions,    ///< frontier nodes expanded via the generator
  kForwardMemoHits,      ///< frontier nodes replayed from the memo
  kForwardKeysInterned,  ///< distinct node keys stored by the arenas

  // Streaming cleaner (core/streaming.cc).
  kStreamAlphaUnderflows,  ///< Pushes rejected: filtered mass hit exact zero

  // Key-interning arena (core/key_arena.cc).
  kKeyInternCalls,  ///< NodeKeyArena::Intern invocations
  kKeyProbeSteps,   ///< hash-table probe steps across both tables

  // Backward phase (core/work_graph.cc).
  kBackwardEdgesBuilt,    ///< edges entering conditioning (== kForwardEdges)
  kBackwardEdgesKilled,   ///< edges conditioned to zero or owned by dead nodes
  kBackwardEdgesKept,     ///< edges with positive conditioned probability
  kBackwardNodesDead,     ///< nodes with no surviving suffix (S(n) = 0)
  kBackwardRenormPasses,  ///< per-layer rescaling passes

  // Batch runtime (runtime/batch_cleaner.cc, runtime/shard_queue.cc).
  kBatchTagsCleaned,             ///< tags that produced a graph
  kBatchTagsFailedPrecondition,  ///< tags with no consistent interpretation
  kBatchTagsInvalidArgument,     ///< tags rejected before cleaning
  kBatchTagsInternalError,       ///< tags boxed from an uncaught exception
  kBatchArenaReuses,             ///< per-tag cleanings seeded by recycled hints
  kBatchArenaColdStarts,         ///< per-tag cleanings with no hints yet
  kQueuePopsLocal,               ///< shards served from the worker's own lane
  kQueueSteals,                  ///< shards stolen from another worker's lane

  // Preflight feasibility analysis (analysis/feasibility.cc).
  kPreflightNodesPruned,  ///< statically-dead candidates removed pre-build
  kPreflightEdgesPruned,  ///< relaxed transitions with a dead endpoint
  kPreflightTagsDoomed,   ///< cleans rejected before building any layer

  // Persistent ct-store (store/graph_codec.cc, store/ct_store.cc).
  kStoreBlobsEncoded,  ///< ct-graph blobs serialized to the binary format
  kStoreBytesEncoded,  ///< blob bytes produced by the encoder
  kStoreBlobsDecoded,  ///< blobs parsed back (materialized or mapped views)
  kStoreBytesDecoded,  ///< blob bytes parsed and checksum-verified
  kStoreCrcFailures,   ///< blobs/sections rejected on a checksum mismatch

  kCount
};

/// Wall-time phase accumulators (milliseconds, summed across threads).
enum class Phase : std::uint8_t {
  kForward,    ///< forward expansion (layer construction)
  kBackward,   ///< conditioning + compaction
  kIoParse,      ///< text parsing (readings, buildings)
  kTagClean,     ///< whole-tag cleaning in the batch runtime
  kPreflight,    ///< static feasibility analysis before the build
  kStoreEncode,  ///< binary blob serialization (store/graph_codec.cc)
  kStoreDecode,  ///< binary blob parse/verify/map (store/*)
  kCount
};

/// Value distributions, collected as log2-bucketed histograms. Ratios and
/// per-build maxima are sampled once per build so count/mean/max summarize
/// the fleet of builds.
enum class Dist : std::uint8_t {
  kLayerWidth,       ///< nodes per recorded forward layer
  kTagMicros,        ///< per-tag cleaning wall time, microseconds
  kKeyProbeMax,      ///< longest intern probe chain, per build
  kKeyOccupancyPct,  ///< persistent key-table load percent, per build
  /// Conditioning mass loss (1 - source mass), ppb, split by the phase
  /// that removed it: the backward sweep (dead suffixes) vs compaction
  /// (nodes stranded from every surviving source). Each build samples
  /// both, so the per-build sum equals the old aggregate mass_lost_ppb
  /// and reconciles with the explain report (obs/explain.h).
  kMassLostBackwardPpb,
  kMassLostCompactionPpb,
  kCount
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);
inline constexpr int kNumPhases = static_cast<int>(Phase::kCount);
inline constexpr int kNumDists = static_cast<int>(Dist::kCount);
/// Bucket i of a histogram holds values whose bit width is i, i.e. value 0
/// lands in bucket 0 and value v > 0 in bucket floor(log2(v)) + 1.
inline constexpr int kHistogramBuckets = 40;

/// Aggregated state of one distribution.
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t buckets[kHistogramBuckets] = {};

  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }

  void MergeFrom(const HistogramData& other) {
    count += other.count;
    sum += other.sum;
    max = other.max > max ? other.max : max;
    for (int i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
  }
};

#if RFIDCLEAN_STATS_ENABLED

/// Records `n` occurrences of `counter` in the calling thread's sink.
void Add(Counter counter, std::uint64_t n = 1);

/// Adds `millis` of wall time to `phase`.
void AddMillis(Phase phase, double millis);

/// Records one sample of `dist`.
void ObserveValue(Dist dist, std::uint64_t value);

#else

inline void Add(Counter, std::uint64_t = 1) {}
inline void AddMillis(Phase, double) {}
inline void ObserveValue(Dist, std::uint64_t) {}

#endif  // RFIDCLEAN_STATS_ENABLED

namespace internal {
#if RFIDCLEAN_STATS_ENABLED
/// Folds every live thread sink plus retired totals into the given arrays
/// (sized kNumCounters / kNumPhases / kNumDists). Additive: callers zero
/// the arrays first.
void SnapshotInto(std::uint64_t* counters, double* phases,
                  HistogramData* dists);
/// Zeroes all live sinks and the retired totals.
void ResetAll();
#else
inline void SnapshotInto(std::uint64_t*, double*, HistogramData*) {}
inline void ResetAll() {}
#endif
}  // namespace internal

/// Whether this build collects metrics (compile-time constant).
constexpr bool Enabled() { return RFIDCLEAN_STATS_ENABLED != 0; }

/// RAII phase timer: adds the scope's wall time to `phase` on destruction.
/// Zero-state and free when stats are compiled out.
class PhaseTimer {
 public:
#if RFIDCLEAN_STATS_ENABLED
  explicit PhaseTimer(Phase phase) : phase_(phase) {}
  ~PhaseTimer() { AddMillis(phase_, watch_.ElapsedMillis()); }
#else
  explicit PhaseTimer(Phase) {}
#endif
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

#if RFIDCLEAN_STATS_ENABLED
 private:
  Phase phase_;
  Stopwatch watch_;
#endif
};

}  // namespace rfidclean::obs

#endif  // RFIDCLEAN_OBS_METRICS_H_
