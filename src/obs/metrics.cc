#include "obs/metrics.h"

#if RFIDCLEAN_STATS_ENABLED

#include <bit>
#include <mutex>
#include <vector>

namespace rfidclean::obs {
namespace {

/// Per-thread accumulation buffer. Only its owning thread writes it;
/// Snapshot()/ResetAll() read and clear it under the registry mutex, so a
/// snapshot taken while a thread is mid-increment may miss that increment
/// but never tears state the tests rely on — callers quiesce their workers
/// (BatchCleaner joins its pool) before reading totals.
struct ThreadSink {
  std::uint64_t counters[kNumCounters] = {};
  double phase_millis[kNumPhases] = {};
  HistogramData dists[kNumDists];

  void FoldInto(std::uint64_t* counters_out, double* phases_out,
                HistogramData* dists_out) const {
    for (int i = 0; i < kNumCounters; ++i) counters_out[i] += counters[i];
    for (int i = 0; i < kNumPhases; ++i) phases_out[i] += phase_millis[i];
    for (int i = 0; i < kNumDists; ++i) dists_out[i].MergeFrom(dists[i]);
  }

  void Clear() {
    for (std::uint64_t& c : counters) c = 0;
    for (double& p : phase_millis) p = 0.0;
    for (HistogramData& d : dists) d = HistogramData{};
  }
};

/// Process-wide registry of live sinks plus the folded totals of sinks
/// whose threads have exited (BatchCleaner workers are short-lived; their
/// counts must outlive them).
struct Registry {
  std::mutex mutex;
  std::vector<ThreadSink*> live;
  ThreadSink retired;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives TLS dtors
  return *registry;
}

/// Owns one thread's sink; constructor registers, destructor folds the
/// final counts into `retired` and deregisters.
struct ThreadSinkOwner {
  ThreadSink sink;

  ThreadSinkOwner() {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.live.push_back(&sink);
  }

  ~ThreadSinkOwner() {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    sink.FoldInto(registry.retired.counters, registry.retired.phase_millis,
                  registry.retired.dists);
    for (std::size_t i = 0; i < registry.live.size(); ++i) {
      if (registry.live[i] == &sink) {
        registry.live[i] = registry.live.back();
        registry.live.pop_back();
        break;
      }
    }
  }
};

ThreadSink& LocalSink() {
  thread_local ThreadSinkOwner owner;
  return owner.sink;
}

int BucketOf(std::uint64_t value) {
  const int bucket = std::bit_width(value);  // 0 -> 0, v>0 -> floor(log2)+1
  return bucket < kHistogramBuckets ? bucket : kHistogramBuckets - 1;
}

}  // namespace

void Add(Counter counter, std::uint64_t n) {
  LocalSink().counters[static_cast<int>(counter)] += n;
}

void AddMillis(Phase phase, double millis) {
  LocalSink().phase_millis[static_cast<int>(phase)] += millis;
}

void ObserveValue(Dist dist, std::uint64_t value) {
  HistogramData& h = LocalSink().dists[static_cast<int>(dist)];
  h.count += 1;
  h.sum += value;
  if (value > h.max) h.max = value;
  h.buckets[BucketOf(value)] += 1;
}

namespace internal {

void SnapshotInto(std::uint64_t* counters, double* phases,
                  HistogramData* dists) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.retired.FoldInto(counters, phases, dists);
  for (const ThreadSink* sink : registry.live) {
    sink->FoldInto(counters, phases, dists);
  }
}

void ResetAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.retired.Clear();
  for (ThreadSink* sink : registry.live) sink->Clear();
}

}  // namespace internal
}  // namespace rfidclean::obs

#endif  // RFIDCLEAN_STATS_ENABLED
