#ifndef RFIDCLEAN_OBS_TRACE_EXPORT_H_
#define RFIDCLEAN_OBS_TRACE_EXPORT_H_

#include <ostream>
#include <vector>

#include "obs/trace.h"

/// \file
/// Chrome trace-event JSON export for trace collections (obs/trace.h).
/// The output is the JSON-object flavor of the trace-event format — a
/// `traceEvents` array plus metadata — and loads directly in Perfetto
/// (ui.perfetto.dev) and chrome://tracing. Schema documented in
/// docs/FORMATS.md.

namespace rfidclean::obs {

/// Serializes `provenance` as a JSON array of per-tag records (digests as
/// 16-digit hex strings, durations as milliseconds). Each line is indented
/// by `indent` spaces. Available in all build modes so --stats embedding
/// does not depend on the trace configuration.
void WriteProvenanceJson(const std::vector<TagProvenance>& provenance,
                         std::ostream& os, int indent);

#if RFIDCLEAN_TRACE_ENABLED

/// Writes `collection` as Chrome trace-event JSON: thread-name metadata
/// events, then every buffered event with pid/tid/ts (microseconds since
/// the session epoch)/cat/args, then `otherData` (tool, dropped-event
/// total) and the per-tag `provenance` array.
void WriteChromeTrace(const TraceCollection& collection, std::ostream& os);

#else

inline void WriteChromeTrace(const TraceCollection&, std::ostream&) {}

#endif  // RFIDCLEAN_TRACE_ENABLED

}  // namespace rfidclean::obs

#endif  // RFIDCLEAN_OBS_TRACE_EXPORT_H_
