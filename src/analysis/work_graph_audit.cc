#include "analysis/work_graph_audit.h"

#include <cmath>
#include <unordered_set>

#include "common/strings.h"

namespace rfidclean {

namespace {

using internal_audit::AppendViolation;
using internal_core::WorkEdge;
using internal_core::WorkGraph;
using internal_core::WorkNode;

void Append(const AuditOptions& options, AuditReport* report,
            AuditCheck check, NodeId node, Timestamp time,
            std::string message) {
  AuditViolation violation;
  violation.check = check;
  violation.node = node;
  violation.time = time;
  violation.message = std::move(message);
  AppendViolation(options, report, std::move(violation));
}

/// Layer offsets must be checkable before anything that indexes through
/// them; returns whether they are usable.
bool CheckLayerOffsets(const WorkGraph& graph, const AuditOptions& options,
                       AuditReport* report) {
  const auto& offsets = graph.layer_begin;
  if (offsets.empty()) {
    if (!graph.nodes.empty() || !graph.edges.empty()) {
      Append(options, report, AuditCheck::kCsrLayerOffsets, kInvalidNode, -1,
             StrFormat("no layers recorded but %zu nodes and %zu edges "
                       "exist",
                       graph.nodes.size(), graph.edges.size()));
      return false;
    }
    return true;
  }
  bool usable = true;
  if (offsets.front() != 0) {
    Append(options, report, AuditCheck::kCsrLayerOffsets, kInvalidNode, 0,
           StrFormat("layer_begin starts at %d, want 0", offsets.front()));
    usable = false;
  }
  for (std::size_t t = 0; t + 1 < offsets.size(); ++t) {
    if (offsets[t] > offsets[t + 1]) {
      Append(options, report, AuditCheck::kCsrLayerOffsets, kInvalidNode,
             static_cast<Timestamp>(t),
             StrFormat("layer_begin decreases: %d then %d", offsets[t],
                       offsets[t + 1]));
      usable = false;
    }
  }
  if (offsets.back() < 0 ||
      static_cast<std::size_t>(offsets.back()) != graph.nodes.size()) {
    Append(options, report, AuditCheck::kCsrLayerOffsets, kInvalidNode,
           static_cast<Timestamp>(offsets.size()) - 1,
           StrFormat("layer_begin ends at %d, want the node count %zu",
                     offsets.back(), graph.nodes.size()));
    usable = false;
  }
  return usable;
}

}  // namespace

void AuditWorkGraphStructure(const WorkGraph& graph,
                             const AuditOptions& options,
                             AuditReport* report) {
  report->nodes_checked += graph.nodes.size();
  report->edges_checked += graph.edges.size();
  report->length = graph.num_layers();

  const bool offsets_usable = CheckLayerOffsets(graph, options, report);

  // Key ids must index the arena regardless of layer structure.
  const std::size_t num_keys = graph.keys.size();
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const WorkNode& node = graph.nodes[i];
    if (node.key_id < 0 ||
        static_cast<std::size_t>(node.key_id) >= num_keys) {
      Append(options, report, AuditCheck::kCsrKeyInterning,
             static_cast<NodeId>(i), node.time,
             StrFormat("key id %d outside the arena of %zu keys",
                       node.key_id, num_keys));
    }
  }
  if (!offsets_usable) return;

  const Timestamp length = graph.num_layers();
  const std::size_t num_edges = graph.edges.size();
  std::int32_t expected_edge_begin = 0;
  std::unordered_set<std::int32_t> layer_keys;
  for (Timestamp t = 0; t < length; ++t) {
    const std::int32_t begin = graph.layer_begin[static_cast<std::size_t>(t)];
    const std::int32_t end =
        graph.layer_begin[static_cast<std::size_t>(t) + 1];
    // A layer is "expanded" when a later layer exists: AdvanceLayer gave
    // each of its nodes a definitive CSR slice. The final (frontier) layer
    // owns no edges yet.
    const bool expanded = t + 1 < length;
    const std::int32_t target_begin =
        expanded ? graph.layer_begin[static_cast<std::size_t>(t) + 1] : 0;
    const std::int32_t target_end =
        expanded ? graph.layer_begin[static_cast<std::size_t>(t) + 2] : 0;
    layer_keys.clear();
    for (std::int32_t id = begin; id < end; ++id) {
      const WorkNode& node = graph.nodes[static_cast<std::size_t>(id)];
      if (node.time != t) {
        Append(options, report, AuditCheck::kLayering, id, t,
               StrFormat("node records time %d but sits in layer %d",
                         node.time, t));
      }
      // The source layer intentionally holds one node per candidate
      // reading (no dedup), so equal keys are legal there.
      if (t > 0 && node.key_id >= 0 &&
          static_cast<std::size_t>(node.key_id) < num_keys &&
          !layer_keys.insert(node.key_id).second) {
        Append(options, report, AuditCheck::kCsrKeyInterning, id, t,
               StrFormat("key id %d appears twice in one layer",
                         node.key_id));
      }
      if (t == 0) {
        const double p = node.source_probability;
        if (!std::isfinite(p) || p <= 0.0 || p > 1.0) {
          Append(options, report, AuditCheck::kCsrProbabilities, id, t,
                 StrFormat("source probability %g outside (0, 1]", p));
        }
      } else if (node.source_probability != 0.0) {
        Append(options, report, AuditCheck::kCsrProbabilities, id, t,
               StrFormat("non-source node carries source probability %g",
                         node.source_probability));
      }
      if (!expanded) {
        if (node.edge_count != 0) {
          Append(options, report, AuditCheck::kCsrEdgeSlices, id, t,
                 StrFormat("frontier node owns %d edges before expansion",
                           node.edge_count));
        }
        continue;
      }
      if (node.edge_begin != expected_edge_begin || node.edge_count < 0) {
        Append(options, report, AuditCheck::kCsrEdgeSlices, id, t,
               StrFormat("edge slice [%d, %d) does not continue the CSR "
                         "stream at %d",
                         node.edge_begin, node.edge_begin + node.edge_count,
                         expected_edge_begin));
        // Resynchronize on the node's own claim when sane, else stop.
        if (node.edge_begin < 0 || node.edge_count < 0 ||
            static_cast<std::size_t>(node.edge_begin) +
                    static_cast<std::size_t>(node.edge_count) >
                num_edges) {
          return;
        }
      }
      expected_edge_begin = node.edge_begin + node.edge_count;
      const WorkEdge* out =
          graph.edges.data() + static_cast<std::size_t>(node.edge_begin);
      for (std::int32_t k = 0; k < node.edge_count; ++k) {
        const WorkEdge& edge = out[k];
        if (edge.to < target_begin || edge.to >= target_end) {
          Append(options, report, AuditCheck::kEdgeTargetRange, id, t,
                 StrFormat("edge target %d outside the next layer "
                           "[%d, %d)",
                           edge.to, target_begin, target_end));
        }
        if (!std::isfinite(edge.probability) || edge.probability <= 0.0 ||
            edge.probability > 1.0) {
          Append(options, report, AuditCheck::kCsrProbabilities, id, t,
                 StrFormat("edge a-priori probability %g outside (0, 1]",
                           edge.probability));
        }
      }
    }
  }
  if (length > 0 &&
      static_cast<std::size_t>(expected_edge_begin) != num_edges) {
    Append(options, report, AuditCheck::kCsrEdgeSlices, kInvalidNode,
           length - 1,
           StrFormat("node slices cover %d edges but the edge array holds "
                     "%zu",
                     expected_edge_begin, num_edges));
  }
}

AuditReport AuditWorkGraph(const WorkGraph& graph,
                           const AuditOptions& options) {
  AuditReport report;
  AuditWorkGraphStructure(graph, options, &report);
  return report;
}

}  // namespace rfidclean
