#include "analysis/feasibility.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

#include "common/check.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rfidclean {
namespace {

// State bits of the relaxation: an object at a candidate location is either
// fresh (arrived this tick) or settled (was already there last tick).
constexpr unsigned char kSettled = 1;
constexpr unsigned char kFresh = 2;
constexpr unsigned char kBothStates = kSettled | kFresh;

// Location-level move admissibility of the relaxation (freshness/latency is
// the caller's concern): a one-tick move a -> b that no DU pair and no
// two-or-more-tick TT bound forbids.
inline bool MoveAllowed(const ConstraintSet& constraints, LocationId a,
                        LocationId b) {
  return !constraints.IsUnreachable(a, b) &&
         constraints.MinTravelTicks(a, b) <= 1;
}

#if RFIDCLEAN_EXPLAIN_ENABLED
/// A doomed tag never reaches conditioning, so the preflight fast-fail is
/// the only place its kill decision can be explained: one preflight event
/// for the doomed tick plus a failure summary whose killed-candidate list
/// names every candidate of that tick (mass = its a-priori probability;
/// together they carry the whole unit of interpretation mass). The ppb
/// splits stay 0 — they measure conditioning loss, which never ran.
void RecordDoomedExplain(const PreflightPlan& plan,
                         const LSequence& sequence) {
  if (!obs::ExplainArmed()) return;
  const long long tag = obs::ExplainCurrentTag();
  const std::int32_t doomed_at = static_cast<std::int32_t>(plan.doomed_at);
  obs::RecordExplainEvent({tag, doomed_at, -1, -1,
                           obs::ExplainPhase::kPreflight,
                           obs::ExplainConstraint::kInfeasible, 1.0});
  obs::ExplainTagSummary summary;
  summary.tag = tag;
  // Must match the builder's/conditioning's failure message verbatim: the
  // explain report reports one canonical status per outcome.
  summary.status =
      "the integrity constraints rule out every interpretation of the "
      "readings";
  summary.phase_kills[static_cast<int>(obs::ExplainPhase::kPreflight)] = 1;
  obs::ExplainConstraintTotal& total =
      summary.constraints[static_cast<int>(obs::ExplainConstraint::kInfeasible)];
  total.kills = 1;
  total.mass = 1.0;
  summary.attributed_mass = 1.0;
  const std::vector<Candidate>& candidates =
      sequence.CandidatesAt(plan.doomed_at);
  summary.killed_candidates.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    summary.killed_candidates.push_back(
        {doomed_at, candidate.location, obs::ExplainPhase::kPreflight,
         obs::ExplainConstraint::kInfeasible, candidate.probability});
  }
  obs::RecordTagExplain(std::move(summary));
}
#endif  // RFIDCLEAN_EXPLAIN_ENABLED

}  // namespace

TravelClosure::TravelClosure(const ConstraintSet& constraints)
    : num_locations_(constraints.num_locations()),
      constraints_(&constraints),
      path_ticks_(num_locations_ * num_locations_, kUnreachable) {
  const LocationId n = static_cast<LocationId>(num_locations_);
  // Departing an intermediate m costs max(1, LT(m)) ticks: the latency
  // constraint pins the object at m before the move completes. The first
  // hop costs 1 — the closure assumes the stay at the path's start is
  // already long enough, which keeps the bound a true lower bound.
  std::vector<Timestamp> out_cost(num_locations_, 1);
  for (LocationId l = 0; l < n; ++l) {
    out_cost[static_cast<std::size_t>(l)] =
        std::max<Timestamp>(1, constraints.LatencyOf(l));
  }
  using Entry = std::pair<Timestamp, LocationId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (LocationId source = 0; source < n; ++source) {
    Timestamp* dist =
        &path_ticks_[static_cast<std::size_t>(source) * num_locations_];
    dist[source] = 0;
    queue.push({0, source});
    while (!queue.empty()) {
      const auto [d, a] = queue.top();
      queue.pop();
      if (d > dist[a]) continue;
      const Timestamp step =
          a == source ? 1 : out_cost[static_cast<std::size_t>(a)];
      for (LocationId b = 0; b < n; ++b) {
        if (b == a || !HasDirectEdge(a, b)) continue;
        const Timestamp through = d + step;
        if (through < dist[b]) {
          dist[b] = through;
          queue.push({through, b});
        }
      }
    }
  }
}

bool TravelClosure::HasDirectEdge(LocationId from, LocationId to) const {
  return from != to && MoveAllowed(*constraints_, from, to);
}

Timestamp TravelClosure::PathTicks(LocationId from, LocationId to) const {
  return path_ticks_[static_cast<std::size_t>(from) * num_locations_ +
                     static_cast<std::size_t>(to)];
}

Timestamp TravelClosure::MinTravelTicks(LocationId from, LocationId to) const {
  return std::max(PathTicks(from, to), constraints_->MinTravelTicks(from, to));
}

bool PreflightPlan::PrunedAt(Timestamp t) const {
  const auto& ticks = admissible[static_cast<std::size_t>(t)];
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    if (!ticks[i]) return true;
  }
  return false;
}

void PreflightPlan::FilterTick(Timestamp t, const std::vector<Candidate>& in,
                               std::vector<Candidate>* out) const {
  const auto& ticks = admissible[static_cast<std::size_t>(t)];
  RFID_CHECK_EQ(in.size(), ticks.size());
  out->clear();
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (ticks[i]) out->push_back(in[i]);
  }
}

FeasibilityOracle::FeasibilityOracle(const ConstraintSet& constraints)
    : constraints_(&constraints), closure_(constraints) {}

PreflightPlan FeasibilityOracle::Analyze(const LSequence& sequence) const {
  obs::PhaseTimer timer(obs::Phase::kPreflight);
  RFID_TRACE_SPAN(span, "analysis", "preflight");
  const ConstraintSet& constraints = *constraints_;
  const std::size_t length = static_cast<std::size_t>(sequence.length());

  PreflightPlan plan;
  plan.admissible.resize(length);
  if (length == 0) return plan;

  // Forward pass: states reachable from the sources (which are fresh — the
  // stay at a latency-constrained source location observably starts at
  // τ = 0, exactly like SuccessorGenerator::ForEachSourceKey's δ = 0).
  std::vector<std::vector<unsigned char>> forward(length);
  for (std::size_t t = 0; t < length; ++t) {
    forward[t].assign(sequence.CandidatesAt(static_cast<Timestamp>(t)).size(),
                      0);
  }
  for (std::size_t i = 0; i < forward[0].size(); ++i) forward[0][i] = kFresh;
  for (std::size_t t = 0; t + 1 < length; ++t) {
    const std::vector<Candidate>& cur =
        sequence.CandidatesAt(static_cast<Timestamp>(t));
    const std::vector<Candidate>& next =
        sequence.CandidatesAt(static_cast<Timestamp>(t + 1));
    for (std::size_t i = 0; i < cur.size(); ++i) {
      const unsigned char state = forward[t][i];
      if (state == 0) continue;
      const LocationId a = cur[i].location;
      // A settled object may leave; a fresh one only when a carries no
      // latency constraint.
      const bool may_move =
          (state & kSettled) != 0 ||
          ((state & kFresh) != 0 && !constraints.HasLatency(a));
      for (std::size_t j = 0; j < next.size(); ++j) {
        const LocationId b = next[j].location;
        if (b == a) {
          forward[t + 1][j] |= kSettled;
        } else if (may_move && MoveAllowed(constraints, a, b)) {
          forward[t + 1][j] |= kFresh;
        }
      }
    }
  }

  // Backward pass: states from which the final tick is reachable. Every
  // state at the last tick is viable — a trajectory may end anywhere.
  std::vector<std::vector<unsigned char>> backward(length);
  for (std::size_t t = 0; t < length; ++t) {
    backward[t].assign(forward[t].size(), 0);
  }
  for (std::size_t i = 0; i < backward[length - 1].size(); ++i) {
    backward[length - 1][i] = kBothStates;
  }
  for (std::size_t t = length - 1; t-- > 0;) {
    const std::vector<Candidate>& cur =
        sequence.CandidatesAt(static_cast<Timestamp>(t));
    const std::vector<Candidate>& next =
        sequence.CandidatesAt(static_cast<Timestamp>(t + 1));
    for (std::size_t i = 0; i < cur.size(); ++i) {
      const LocationId a = cur[i].location;
      bool stay_viable = false;
      bool move_viable = false;
      for (std::size_t j = 0; j < next.size(); ++j) {
        const LocationId b = next[j].location;
        if (b == a) {
          // Staying lands in the settled state at t + 1.
          stay_viable = stay_viable || (backward[t + 1][j] & kSettled) != 0;
        } else if (MoveAllowed(constraints, a, b)) {
          // Moving lands fresh at b.
          move_viable = move_viable || (backward[t + 1][j] & kFresh) != 0;
        }
      }
      unsigned char state = 0;
      if (stay_viable) {
        state = kBothStates;  // Any state may stay.
      } else if (move_viable) {
        state = kSettled;
        if (!constraints.HasLatency(a)) state |= kFresh;
      }
      backward[t][i] = state;
    }
  }

  // A candidate survives when some state is both reachable and viable.
  for (std::size_t t = 0; t < length; ++t) {
    auto& ticks = plan.admissible[t];
    ticks.assign(forward[t].size(), false);
    bool any = false;
    for (std::size_t i = 0; i < ticks.size(); ++i) {
      if ((forward[t][i] & backward[t][i]) != 0) {
        ticks[i] = true;
        any = true;
      } else {
        ++plan.candidates_pruned;
      }
    }
    if (!any && plan.doomed_at < 0) {
      plan.doomed_at = static_cast<Timestamp>(t);
    }
  }

  // Count the relaxed transitions the pruned build can no longer touch.
  if (plan.candidates_pruned > 0) {
    for (std::size_t t = 0; t + 1 < length; ++t) {
      const std::vector<Candidate>& cur =
          sequence.CandidatesAt(static_cast<Timestamp>(t));
      const std::vector<Candidate>& next =
          sequence.CandidatesAt(static_cast<Timestamp>(t + 1));
      for (std::size_t i = 0; i < cur.size(); ++i) {
        for (std::size_t j = 0; j < next.size(); ++j) {
          const LocationId a = cur[i].location;
          const LocationId b = next[j].location;
          if (b != a && !MoveAllowed(constraints, a, b)) continue;
          if (!plan.admissible[t][i] || !plan.admissible[t + 1][j]) {
            ++plan.edges_pruned;
          }
        }
      }
    }
  }

  RFID_STATS(obs::Add(obs::Counter::kPreflightNodesPruned,
                      plan.candidates_pruned));
  RFID_STATS(obs::Add(obs::Counter::kPreflightEdgesPruned, plan.edges_pruned));
  if (plan.doomed()) {
    RFID_STATS(obs::Add(obs::Counter::kPreflightTagsDoomed));
    RFID_EXPLAIN(RecordDoomedExplain(plan, sequence));
  }
  RFID_TRACE(span.AddArg("ticks", static_cast<std::uint64_t>(length)));
  RFID_TRACE(span.AddArg("pruned_nodes", plan.candidates_pruned));
  RFID_TRACE(span.AddArg("pruned_edges", plan.edges_pruned));
  RFID_TRACE(span.AddArg("doomed", plan.doomed() ? 1 : 0));
  return plan;
}

}  // namespace rfidclean
