#include "analysis/numeric_audit.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/float_eq.h"
#include "common/strings.h"

namespace rfidclean {

namespace {

using internal_audit::AppendViolation;

bool TargetInRange(const CtGraph& graph, const CtGraph::Edge& edge) {
  return edge.to >= 0 &&
         static_cast<std::size_t>(edge.to) < graph.NumNodes();
}

/// A conditioned probability must be a finite value in (0, 1]: zero-mass
/// nodes and edges are pruned by the backward phase, so a zero here means a
/// dead branch survived compaction.
bool CheckProbability(double p, AuditCheck check, NodeId node,
                      Timestamp time, const char* what,
                      const AuditOptions& options, AuditReport* report) {
  const char* problem = nullptr;
  if (std::isnan(p)) {
    problem = "is NaN";
  } else if (std::isinf(p)) {
    problem = "is infinite";
  } else if (p < 0.0) {
    problem = "is negative";
  } else if (p == 0.0) {
    problem = "is zero (unpruned dead branch)";
  } else if (p > 1.0 + options.epsilon) {
    problem = "exceeds 1";
  }
  if (problem == nullptr) return true;
  AppendViolation(options, report,
                  AuditViolation{check, node, time,
                                 StrFormat("%s probability %g %s", what, p,
                                           problem)});
  return false;
}

}  // namespace

double TotalPathMass(const CtGraph& graph) {
  if (graph.length() <= 0) return 0.0;
  std::vector<double> suffix(graph.NumNodes(), 0.0);
  for (NodeId id : graph.TargetNodes()) {
    suffix[static_cast<std::size_t>(id)] = 1.0;
  }
  for (Timestamp t = graph.length() - 2; t >= 0; --t) {
    for (NodeId id : graph.NodesAt(t)) {
      double mass = 0.0;
      for (const CtGraph::Edge& edge : graph.node(id).out_edges) {
        if (!TargetInRange(graph, edge)) continue;
        mass += edge.probability * suffix[static_cast<std::size_t>(edge.to)];
      }
      suffix[static_cast<std::size_t>(id)] = mass;
    }
  }
  double total = 0.0;
  for (NodeId id : graph.SourceNodes()) {
    total += graph.node(id).source_probability *
             suffix[static_cast<std::size_t>(id)];
  }
  return total;
}

void AuditNumerics(const CtGraph& graph, const AuditOptions& options,
                   AuditReport* report) {
  if (graph.length() <= 0) return;

  double source_sum = 0.0;
  for (NodeId id : graph.SourceNodes()) {
    const CtGraph::Node& node = graph.node(id);
    CheckProbability(node.source_probability,
                     AuditCheck::kFiniteProbabilities, id, node.time,
                     "source", options, report);
    source_sum += node.source_probability;
  }
  if (!ApproxOne(source_sum, options.epsilon)) {
    AppendViolation(
        options, report,
        AuditViolation{AuditCheck::kSourceNormalization, kInvalidNode, 0,
                       StrFormat("source probabilities sum to %.12f",
                                 source_sum)});
  }

  for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const CtGraph::Node& node = graph.node(id);
    if (node.out_edges.empty()) continue;
    double out_sum = 0.0;
    bool finite = true;
    for (const CtGraph::Edge& edge : node.out_edges) {
      finite &= CheckProbability(edge.probability,
                                 AuditCheck::kFiniteProbabilities, id,
                                 node.time, "edge", options, report);
      out_sum += edge.probability;
    }
    // A broken summand already produced a finite-probabilities violation;
    // reporting the (necessarily broken) sum on top would be noise.
    if (finite && !ApproxOne(out_sum, options.epsilon)) {
      AppendViolation(
          options, report,
          AuditViolation{AuditCheck::kEdgeNormalization, id, node.time,
                         StrFormat("outgoing probabilities sum to %.12f",
                                   out_sum)});
    }
  }

  // The sweep compounds one rounding step per layer, so the tolerance
  // scales with the graph length.
  report->path_mass = TotalPathMass(graph);
  const double tolerance =
      options.epsilon * static_cast<double>(graph.length() > 0
                                                ? graph.length()
                                                : 1);
  if (!ApproxOne(report->path_mass, tolerance)) {
    AppendViolation(
        options, report,
        AuditViolation{AuditCheck::kPathMass, kInvalidNode, -1,
                       StrFormat("total conditioned path mass is %.12f, "
                                 "not 1 (tolerance %g)",
                                 report->path_mass, tolerance)});
  }
}

}  // namespace rfidclean
