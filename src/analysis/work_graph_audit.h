#ifndef RFIDCLEAN_ANALYSIS_WORK_GRAPH_AUDIT_H_
#define RFIDCLEAN_ANALYSIS_WORK_GRAPH_AUDIT_H_

#include "analysis/audit_report.h"
#include "core/work_graph.h"

namespace rfidclean {

/// \file
/// Invariant audit of the *in-construction* CSR work graph (see
/// core/work_graph.h and docs/ALGORITHM.md §8) — the forward-phase state a
/// ForwardEngine exposes through work(), before ConditionAndCompact
/// consumes it. The compacted CtGraph has its own auditor (graph_audit.h);
/// this one verifies the compressed layout the backward phase relies on:
///
///  - layer offsets: layer_begin[0] == 0, monotone non-decreasing, last
///    entry == node count — every layer is a contiguous ascending id range
///    and node times match their layer (kCsrLayerOffsets / kLayering);
///  - edge slices: walking expanded layers in id order, each node's
///    [edge_begin, edge_begin + edge_count) is exactly the next slice of
///    the edge array, the slices partition it completely, and the
///    unexpanded frontier owns no edges yet (kCsrEdgeSlices);
///  - edge targets: every edge lands in the next layer's id range
///    (kEdgeTargetRange / kLayering);
///  - key interning: every key id indexes the arena, and no two nodes of
///    an expanded layer share one — per-layer interning collapsed equal
///    keys to a single node (kCsrKeyInterning; the source layer is exempt:
///    Definition 2 materializes one node per candidate reading);
///  - probability labels: edges carry finite a-priori masses in (0, 1],
///    sources carry positive masses, non-source layers none
///    (kCsrProbabilities).
///
/// Like the ct-graph auditor it is defensive: out-of-range offsets are
/// reported, never dereferenced, so it can be pointed at deliberately
/// corrupted fixtures.

/// Appends violations of `graph` to `report`; updates the report's
/// coverage counters.
void AuditWorkGraphStructure(const internal_core::WorkGraph& graph,
                             const AuditOptions& options,
                             AuditReport* report);

/// One-call audit of a work graph.
AuditReport AuditWorkGraph(const internal_core::WorkGraph& graph,
                           const AuditOptions& options = AuditOptions());

}  // namespace rfidclean

#endif  // RFIDCLEAN_ANALYSIS_WORK_GRAPH_AUDIT_H_
