#ifndef RFIDCLEAN_ANALYSIS_AUDIT_REPORT_H_
#define RFIDCLEAN_ANALYSIS_AUDIT_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/ct_graph.h"
#include "model/trajectory.h"

namespace rfidclean {

/// \file
/// Structured result of a ct-graph audit (see graph_audit.h). Unlike
/// RFID_CHECK / CtGraph::CheckConsistency, an audit never aborts and does
/// not stop at the first problem: it collects every violation (up to a cap)
/// with enough context — node, timestamp, offending value — to diagnose
/// which construction step drifted.

/// The individual invariants the auditor verifies, each traceable to the
/// paper (see docs/ALGORITHM.md, "Invariants").
enum class AuditCheck : std::uint8_t {
  /// Every edge references a node index inside the graph.
  kEdgeTargetRange,
  /// Every edge advances the timestamp by exactly one (layered DAG,
  /// Definition 4).
  kLayering,
  /// The edge relation admits a topological order (no cycles), even when
  /// the per-node timestamps are themselves corrupt.
  kAcyclicity,
  /// Every layer [0, length) holds at least one node.
  kLayerNonEmpty,
  /// Every node is forward-reachable from a source and backward-reachable
  /// from a target: source→target paths are exactly the valid trajectories
  /// (Definition 4 / Proposition 1).
  kReachability,
  /// Target nodes have no outgoing edges; non-target nodes have at least
  /// one (dead branches are pruned by the backward phase, Algorithm 1).
  kTermination,
  /// No probability is NaN, infinite, negative, zero, or greater than one.
  kFiniteProbabilities,
  /// Outgoing edge probabilities of every non-target node sum to 1 after
  /// conditioning (Definition 5).
  kEdgeNormalization,
  /// Source node probabilities sum to 1 after conditioning (Definition 5).
  kSourceNormalization,
  /// Total conditioned path mass, via a backward suffix-mass sweep, is 1:
  /// the graph encodes a probability distribution over trajectories
  /// (Definition 3).
  kPathMass,

  // Checks of the in-construction CSR work graph (work_graph_audit.h).

  /// layer_begin starts at 0, is monotone, and its last entry equals the
  /// node count (layers are contiguous ascending id ranges).
  kCsrLayerOffsets,
  /// Expanded nodes own consecutive, non-overlapping edge slices that
  /// together cover the whole edge array; frontier nodes own none yet.
  kCsrEdgeSlices,
  /// Every node's key id indexes the arena, and within an expanded layer
  /// no two nodes share a key (per-layer interning).
  kCsrKeyInterning,
  /// Forward-phase probability labels: edges carry a-priori masses in
  /// (0, 1], sources carry positive candidate masses, later layers none.
  kCsrProbabilities,
};

/// Stable identifier for messages and test assertions.
const char* AuditCheckName(AuditCheck check);

/// One detected invariant violation, anchored to a node when applicable.
struct AuditViolation {
  AuditCheck check = AuditCheck::kAcyclicity;
  /// The offending node, or kInvalidNode for graph-global violations
  /// (e.g. total path mass).
  NodeId node = kInvalidNode;
  /// Timestamp of the offending node/layer, or -1 when not applicable.
  Timestamp time = -1;
  std::string message;

  /// "[edge-normalization] node 7 @t=3: outgoing probabilities sum to ...".
  std::string ToString() const;
};

/// Tuning knobs of an audit pass.
struct AuditOptions {
  /// Tolerance for the normalization and path-mass checks. The default
  /// matches CtGraph::CheckConsistency.
  double epsilon = 1e-9;
  /// Collection stops (and `truncated` is set) after this many violations;
  /// a corrupt graph can otherwise produce one violation per node.
  std::size_t max_violations = 64;
};

/// Everything a caller needs to act on an audit: the violations plus the
/// coverage counters proving what was inspected.
struct AuditReport {
  std::vector<AuditViolation> violations;
  /// True when max_violations was reached and collection stopped early.
  bool truncated = false;

  /// Coverage of the pass.
  std::size_t nodes_checked = 0;
  std::size_t edges_checked = 0;
  Timestamp length = 0;
  /// Total conditioned path mass from the backward sweep; meaningful only
  /// when the structural checks passed (NaN propagates otherwise).
  double path_mass = 0.0;

  bool ok() const { return violations.empty() && !truncated; }

  /// Number of violations of a specific check.
  std::size_t CountOf(AuditCheck check) const;

  /// Multi-line human-readable report (one line per violation plus a
  /// summary header).
  std::string ToString() const;

  /// Ok when the audit passed; otherwise an InternalError carrying the
  /// first violations, for propagation through Result<> pipelines.
  Status ToStatus() const;
};

namespace internal_audit {

/// Appends `violation` unless the report already holds
/// options.max_violations entries, in which case it marks the report
/// truncated instead. Returns whether the violation was recorded.
bool AppendViolation(const AuditOptions& options, AuditReport* report,
                     AuditViolation violation);

}  // namespace internal_audit

}  // namespace rfidclean

#endif  // RFIDCLEAN_ANALYSIS_AUDIT_REPORT_H_
