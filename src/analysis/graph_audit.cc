#include "analysis/graph_audit.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "analysis/numeric_audit.h"
#include "common/strings.h"
#include "core/self_audit.h"

namespace rfidclean {

namespace {

using internal_audit::AppendViolation;

bool EdgeTargetInRange(const CtGraph& graph, const CtGraph::Edge& edge) {
  return edge.to >= 0 &&
         static_cast<std::size_t>(edge.to) < graph.NumNodes();
}

/// Edge target indices and layering: every edge must land inside the graph
/// and advance the timestamp by exactly one.
void AuditEdges(const CtGraph& graph, const AuditOptions& options,
                AuditReport* report) {
  for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const CtGraph::Node& node = graph.node(id);
    for (const CtGraph::Edge& edge : node.out_edges) {
      ++report->edges_checked;
      if (!EdgeTargetInRange(graph, edge)) {
        AppendViolation(
            options, report,
            AuditViolation{AuditCheck::kEdgeTargetRange, id, node.time,
                           StrFormat("edge targets unknown node %d",
                                     edge.to)});
        continue;
      }
      const Timestamp to_time = graph.node(edge.to).time;
      if (to_time != node.time + 1) {
        AppendViolation(
            options, report,
            AuditViolation{AuditCheck::kLayering, id, node.time,
                           StrFormat("edge to node %d jumps t=%d -> t=%d "
                                     "instead of advancing by one",
                                     edge.to, node.time, to_time)});
      }
    }
  }
}

/// Kahn's algorithm over the raw edge relation. The layering check already
/// implies acyclicity on a well-formed graph, but a corrupt graph can lie
/// about its timestamps, so the topological sort works purely from edges.
void AuditAcyclicity(const CtGraph& graph, const AuditOptions& options,
                     AuditReport* report) {
  std::vector<std::size_t> in_degree(graph.NumNodes(), 0);
  for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
    for (const CtGraph::Edge& edge : graph.node(static_cast<NodeId>(i))
                                         .out_edges) {
      if (EdgeTargetInRange(graph, edge)) {
        ++in_degree[static_cast<std::size_t>(edge.to)];
      }
    }
  }
  std::vector<NodeId> ready;
  for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
    if (in_degree[i] == 0) ready.push_back(static_cast<NodeId>(i));
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    ++processed;
    for (const CtGraph::Edge& edge : graph.node(id).out_edges) {
      if (!EdgeTargetInRange(graph, edge)) continue;
      if (--in_degree[static_cast<std::size_t>(edge.to)] == 0) {
        ready.push_back(edge.to);
      }
    }
  }
  if (processed < graph.NumNodes()) {
    // Name one node still carrying in-degree: it lies on (or behind) a
    // cycle, which gives the diagnostics a concrete anchor.
    NodeId witness = kInvalidNode;
    for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
      if (in_degree[i] > 0) {
        witness = static_cast<NodeId>(i);
        break;
      }
    }
    AppendViolation(
        options, report,
        AuditViolation{
            AuditCheck::kAcyclicity, witness,
            witness == kInvalidNode ? Timestamp{-1}
                                    : graph.node(witness).time,
            StrFormat("topological sort stuck with %zu of %zu nodes "
                      "unprocessed (cycle)",
                      graph.NumNodes() - processed, graph.NumNodes())});
  }
}

/// Layer occupancy plus source/target termination.
void AuditLayers(const CtGraph& graph, const AuditOptions& options,
                 AuditReport* report) {
  for (Timestamp t = 0; t < graph.length(); ++t) {
    if (graph.NodesAt(t).empty()) {
      AppendViolation(options, report,
                      AuditViolation{AuditCheck::kLayerNonEmpty,
                                     kInvalidNode, t, "layer has no nodes"});
    }
  }
  for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const CtGraph::Node& node = graph.node(id);
    const bool is_target = node.time == graph.length() - 1;
    if (is_target && !node.out_edges.empty()) {
      AppendViolation(
          options, report,
          AuditViolation{AuditCheck::kTermination, id, node.time,
                         StrFormat("target node has %zu outgoing edge(s)",
                                   node.out_edges.size())});
    } else if (!is_target && node.out_edges.empty()) {
      AppendViolation(
          options, report,
          AuditViolation{AuditCheck::kTermination, id, node.time,
                         "non-target node has no outgoing edge (dead "
                         "branch not pruned)"});
    }
  }
}

/// Forward reachability from the sources and backward reachability from
/// the targets: a node failing either is not on any source→target path, so
/// the path↔trajectory bijection of Definition 4 is broken.
void AuditReachability(const CtGraph& graph, const AuditOptions& options,
                       AuditReport* report) {
  if (graph.length() <= 0 || graph.NumNodes() == 0) return;
  std::vector<bool> forward(graph.NumNodes(), false);
  std::vector<NodeId> stack;
  for (NodeId id : graph.SourceNodes()) {
    forward[static_cast<std::size_t>(id)] = true;
    stack.push_back(id);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (const CtGraph::Edge& edge : graph.node(id).out_edges) {
      if (!EdgeTargetInRange(graph, edge)) continue;
      if (!forward[static_cast<std::size_t>(edge.to)]) {
        forward[static_cast<std::size_t>(edge.to)] = true;
        stack.push_back(edge.to);
      }
    }
  }

  // Backward sweep needs the reverse adjacency once.
  std::vector<std::vector<NodeId>> reverse(graph.NumNodes());
  for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
    for (const CtGraph::Edge& edge : graph.node(static_cast<NodeId>(i))
                                         .out_edges) {
      if (EdgeTargetInRange(graph, edge)) {
        reverse[static_cast<std::size_t>(edge.to)].push_back(
            static_cast<NodeId>(i));
      }
    }
  }
  std::vector<bool> backward(graph.NumNodes(), false);
  for (NodeId id : graph.TargetNodes()) {
    backward[static_cast<std::size_t>(id)] = true;
    stack.push_back(id);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId from : reverse[static_cast<std::size_t>(id)]) {
      if (!backward[static_cast<std::size_t>(from)]) {
        backward[static_cast<std::size_t>(from)] = true;
        stack.push_back(from);
      }
    }
  }

  for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
    if (forward[i] && backward[i]) continue;
    const NodeId id = static_cast<NodeId>(i);
    const char* reason =
        !forward[i] && !backward[i]
            ? "orphan node: reachable from no source and no target"
            : (!forward[i] ? "node is unreachable from every source"
                           : "node reaches no target");
    AppendViolation(options, report,
                    AuditViolation{AuditCheck::kReachability, id,
                                   graph.node(id).time, reason});
  }
}

}  // namespace

void AuditStructure(const CtGraph& graph, const AuditOptions& options,
                    AuditReport* report) {
  report->length = graph.length();
  report->nodes_checked = graph.NumNodes();
  if (graph.length() <= 0) {
    AppendViolation(options, report,
                    AuditViolation{AuditCheck::kLayerNonEmpty, kInvalidNode,
                                   -1, "graph spans no timestamps"});
    return;
  }
  AuditEdges(graph, options, report);
  AuditAcyclicity(graph, options, report);
  AuditLayers(graph, options, report);
  AuditReachability(graph, options, report);
}

AuditReport AuditGraph(const CtGraph& graph, const AuditOptions& options) {
  AuditReport report;
  AuditStructure(graph, options, &report);
  AuditNumerics(graph, options, &report);
  return report;
}

namespace {

/// Options of the installed self-audit hook. A plain global: the hook is a
/// process-wide debugging aid flipped at startup (CLI flag, test
/// fixture), not a per-build knob.
AuditOptions g_self_audit_options;

Status SelfAuditFn(const CtGraph& graph) {
  return AuditGraph(graph, g_self_audit_options).ToStatus();
}

}  // namespace

void EnableSelfAudit(const AuditOptions& options) {
  g_self_audit_options = options;
  SetCtGraphAuditHook(&SelfAuditFn);
}

void DisableSelfAudit() { SetCtGraphAuditHook(nullptr); }

}  // namespace rfidclean
