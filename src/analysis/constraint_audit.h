#ifndef RFIDCLEAN_ANALYSIS_CONSTRAINT_AUDIT_H_
#define RFIDCLEAN_ANALYSIS_CONSTRAINT_AUDIT_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/feasibility.h"
#include "constraints/constraint_set.h"

namespace rfidclean {

/// \file
/// Lint-style semantic analysis of a constraint set IC against its own
/// closure (TravelClosure). The paper treats IC as trusted input; inferred
/// or hand-edited sets arriving at a service boundary are not. The auditor
/// never aborts: it collects every finding (up to a cap) with severities,
/// so a caller can reject on errors, surface warnings, and ignore the
/// informational redundancies — mirroring the ct-graph auditor
/// (audit_report.h) one layer earlier in the pipeline.

enum class ConstraintSeverity : std::uint8_t {
  kError,    ///< IC is self-contradictory; cleans will misbehave or fail.
  kWarning,  ///< suspicious but satisfiable (e.g. unreachable coverage).
  kInfo,     ///< redundancy: removing the constraint changes nothing.
};

/// Stable identifier ("error", "warning", "info") for messages and JSON.
const char* ConstraintSeverityName(ConstraintSeverity severity);

/// The diagnostic catalogue (docs/ALGORITHM.md §11 documents each entry
/// with its derivation).
enum class ConstraintDiagnostic : std::uint8_t {
  /// error: travelingTime(a, b, ν) where the closure shows no path from a
  /// to b at all — the bound constrains a journey that can never happen,
  /// which almost always means a reversed pair or a missing adjacency.
  kTravelingTimeUnsatisfiable,
  /// error: location a has at least one non-DU target, yet every one of
  /// them carries a TT bound > 1. No first hop exists, so a can never be
  /// left — contradicting the non-DU pairs (and any TT constraint out of
  /// a, which promises the journey is merely slow, not impossible).
  kNoExit,
  /// warning: every target of `from` is directly unreachable — the
  /// location is a deliberate sink, or the DU set over-approximates.
  kSinkLocation,
  /// info: unreachable(a, b) alongside travelingTime(a, b, ν >= 2); the TT
  /// bound already forbids the direct move, so the DU pair is implied.
  kRedundantUnreachable,
  /// info: travelingTime(a, b, ν) where a is DU-blocked from b and every
  /// remaining path through the closure already needs >= ν ticks; dropping
  /// the bound changes no admissible trajectory.
  kRedundantTravelingTime,
  /// warning: no reader covers the location; stays there are invisible to
  /// the deployment. Only emitted when coverage data is supplied.
  kUncoveredLocation,
  /// warning: the location is not reachable (closure) from any covered
  /// location, so no observed object can ever be placed there. Only
  /// emitted when coverage data is supplied.
  kUnreachableFromCoverage,
};

/// Stable kebab-case identifier ("tt-unsatisfiable", "no-exit", ...).
const char* ConstraintDiagnosticName(ConstraintDiagnostic code);

/// Severity a diagnostic always carries (the catalogue is static).
ConstraintSeverity SeverityOf(ConstraintDiagnostic code);

/// One finding, anchored to the locations involved. `to` is
/// kInvalidLocation for per-location diagnostics; `bound` is the TT bound
/// for the traveling-time diagnostics and 0 otherwise.
struct ConstraintFinding {
  ConstraintDiagnostic code = ConstraintDiagnostic::kNoExit;
  ConstraintSeverity severity = ConstraintSeverity::kError;
  LocationId from = kInvalidLocation;
  LocationId to = kInvalidLocation;
  Timestamp bound = 0;
  std::string message;

  /// "[error] no-exit: location 3 ...".
  std::string ToString() const;
};

struct ConstraintAuditOptions {
  /// Collection stops (and `truncated` is set) after this many findings.
  std::size_t max_findings = 256;
  /// Per-LocationId reader coverage; empty skips the coverage diagnostics.
  std::vector<bool> covered_locations;
  /// Optional per-LocationId display names for messages; ids are used when
  /// empty (the audit layer knows nothing about buildings).
  std::vector<std::string> location_names;
};

/// Findings plus the coverage counters proving what was inspected.
struct ConstraintAuditReport {
  std::vector<ConstraintFinding> findings;
  bool truncated = false;

  std::size_t num_locations = 0;
  std::size_t num_unreachable = 0;
  std::size_t num_traveling_time = 0;
  std::size_t num_latency = 0;

  /// No errors and nothing dropped (warnings and infos are tolerated).
  bool ok() const {
    return !truncated && CountOf(ConstraintSeverity::kError) == 0;
  }

  std::size_t CountOf(ConstraintSeverity severity) const;
  std::size_t CountOf(ConstraintDiagnostic code) const;

  /// Multi-line human-readable report (summary header + one line per
  /// finding).
  std::string ToString() const;

  /// Machine-readable report; schema documented in docs/FORMATS.md
  /// ("Constraint audit report").
  void WriteJson(std::ostream& os) const;
};

/// Runs every diagnostic over `constraints`. `closure` must have been
/// built from the same constraint set.
ConstraintAuditReport AuditConstraints(
    const ConstraintSet& constraints, const TravelClosure& closure,
    const ConstraintAuditOptions& options = ConstraintAuditOptions());

}  // namespace rfidclean

#endif  // RFIDCLEAN_ANALYSIS_CONSTRAINT_AUDIT_H_
