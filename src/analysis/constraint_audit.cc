#include "analysis/constraint_audit.h"

#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace rfidclean {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// messages are generated ASCII but location names come from user files.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

class FindingSink {
 public:
  FindingSink(const ConstraintAuditOptions& options,
              ConstraintAuditReport* report)
      : options_(options), report_(report) {}

  std::string Name(LocationId l) const {
    const std::size_t index = static_cast<std::size_t>(l);
    if (index < options_.location_names.size()) {
      return options_.location_names[index];
    }
    return StrFormat("location %d", l);
  }

  void Emit(ConstraintDiagnostic code, LocationId from, LocationId to,
            Timestamp bound, std::string message) {
    if (report_->findings.size() >= options_.max_findings) {
      report_->truncated = true;
      return;
    }
    ConstraintFinding finding;
    finding.code = code;
    finding.severity = SeverityOf(code);
    finding.from = from;
    finding.to = to;
    finding.bound = bound;
    finding.message = std::move(message);
    report_->findings.push_back(std::move(finding));
  }

 private:
  const ConstraintAuditOptions& options_;
  ConstraintAuditReport* report_;
};

}  // namespace

const char* ConstraintSeverityName(ConstraintSeverity severity) {
  switch (severity) {
    case ConstraintSeverity::kError:
      return "error";
    case ConstraintSeverity::kWarning:
      return "warning";
    case ConstraintSeverity::kInfo:
      return "info";
  }
  return "?";
}

const char* ConstraintDiagnosticName(ConstraintDiagnostic code) {
  switch (code) {
    case ConstraintDiagnostic::kTravelingTimeUnsatisfiable:
      return "tt-unsatisfiable";
    case ConstraintDiagnostic::kNoExit:
      return "no-exit";
    case ConstraintDiagnostic::kSinkLocation:
      return "sink-location";
    case ConstraintDiagnostic::kRedundantUnreachable:
      return "redundant-unreachable";
    case ConstraintDiagnostic::kRedundantTravelingTime:
      return "redundant-traveling-time";
    case ConstraintDiagnostic::kUncoveredLocation:
      return "uncovered-location";
    case ConstraintDiagnostic::kUnreachableFromCoverage:
      return "unreachable-from-coverage";
  }
  return "?";
}

ConstraintSeverity SeverityOf(ConstraintDiagnostic code) {
  switch (code) {
    case ConstraintDiagnostic::kTravelingTimeUnsatisfiable:
    case ConstraintDiagnostic::kNoExit:
      return ConstraintSeverity::kError;
    case ConstraintDiagnostic::kSinkLocation:
    case ConstraintDiagnostic::kUncoveredLocation:
    case ConstraintDiagnostic::kUnreachableFromCoverage:
      return ConstraintSeverity::kWarning;
    case ConstraintDiagnostic::kRedundantUnreachable:
    case ConstraintDiagnostic::kRedundantTravelingTime:
      return ConstraintSeverity::kInfo;
  }
  return ConstraintSeverity::kError;
}

std::string ConstraintFinding::ToString() const {
  return StrFormat("[%s] %s: %s", ConstraintSeverityName(severity),
                   ConstraintDiagnosticName(code), message.c_str());
}

std::size_t ConstraintAuditReport::CountOf(ConstraintSeverity severity) const {
  std::size_t count = 0;
  for (const ConstraintFinding& finding : findings) {
    if (finding.severity == severity) ++count;
  }
  return count;
}

std::size_t ConstraintAuditReport::CountOf(ConstraintDiagnostic code) const {
  std::size_t count = 0;
  for (const ConstraintFinding& finding : findings) {
    if (finding.code == code) ++count;
  }
  return count;
}

std::string ConstraintAuditReport::ToString() const {
  std::string out = StrFormat(
      "constraint audit: %zu locations, %zu DU + %zu TT + %zu LT "
      "constraints; %zu errors, %zu warnings, %zu infos\n",
      num_locations, num_unreachable, num_traveling_time, num_latency,
      CountOf(ConstraintSeverity::kError),
      CountOf(ConstraintSeverity::kWarning),
      CountOf(ConstraintSeverity::kInfo));
  for (const ConstraintFinding& finding : findings) {
    out += "  " + finding.ToString() + "\n";
  }
  if (truncated) out += "  ... findings truncated at the collection cap\n";
  return out;
}

void ConstraintAuditReport::WriteJson(std::ostream& os) const {
  os << "{\n"
     << "  \"schema\": 1,\n"
     << StrFormat("  \"num_locations\": %zu,\n", num_locations)
     << StrFormat(
            "  \"constraints\": {\"unreachable\": %zu, "
            "\"traveling_time\": %zu, \"latency\": %zu},\n",
            num_unreachable, num_traveling_time, num_latency)
     << StrFormat(
            "  \"counts\": {\"error\": %zu, \"warning\": %zu, "
            "\"info\": %zu},\n",
            CountOf(ConstraintSeverity::kError),
            CountOf(ConstraintSeverity::kWarning),
            CountOf(ConstraintSeverity::kInfo))
     << "  \"truncated\": " << (truncated ? "true" : "false") << ",\n"
     << "  \"ok\": " << (ok() ? "true" : "false") << ",\n"
     << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const ConstraintFinding& finding = findings[i];
    os << (i == 0 ? "\n" : ",\n")
       << StrFormat(
              "    {\"code\": \"%s\", \"severity\": \"%s\", \"from\": %d, "
              "\"to\": %d, \"bound\": %d, \"message\": \"%s\"}",
              ConstraintDiagnosticName(finding.code),
              ConstraintSeverityName(finding.severity), finding.from,
              finding.to, finding.bound,
              JsonEscape(finding.message).c_str());
  }
  os << (findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

ConstraintAuditReport AuditConstraints(const ConstraintSet& constraints,
                                       const TravelClosure& closure,
                                       const ConstraintAuditOptions& options) {
  RFID_CHECK_EQ(constraints.num_locations(), closure.num_locations());
  const LocationId n = static_cast<LocationId>(constraints.num_locations());

  ConstraintAuditReport report;
  report.num_locations = constraints.num_locations();
  report.num_unreachable = constraints.NumUnreachable();
  report.num_traveling_time = constraints.NumTravelingTime();
  report.num_latency = constraints.NumLatency();
  FindingSink sink(options, &report);

  // Traveling-time diagnostics: contradictions against the closure, then
  // the two redundancy directions of a DU/TT pair.
  for (LocationId from = 0; from < n; ++from) {
    for (const TravelingTime& tt : constraints.TravelingTimesFrom(from)) {
      if (!closure.Reachable(tt.from, tt.to)) {
        sink.Emit(ConstraintDiagnostic::kTravelingTimeUnsatisfiable, tt.from,
                  tt.to, tt.min_ticks,
                  StrFormat("travelingTime(%s, %s, %d) constrains a journey "
                            "the DU constraints already rule out entirely",
                            sink.Name(tt.from).c_str(),
                            sink.Name(tt.to).c_str(), tt.min_ticks));
        continue;
      }
      if (!constraints.IsUnreachable(tt.from, tt.to)) continue;
      sink.Emit(ConstraintDiagnostic::kRedundantUnreachable, tt.from, tt.to,
                tt.min_ticks,
                StrFormat("unreachable(%s, %s) is implied by "
                          "travelingTime(.., %d): a bound of two or more "
                          "ticks already forbids the direct move",
                          sink.Name(tt.from).c_str(),
                          sink.Name(tt.to).c_str(), tt.min_ticks));
      const Timestamp path = closure.PathTicks(tt.from, tt.to);
      if (path >= tt.min_ticks) {
        sink.Emit(ConstraintDiagnostic::kRedundantTravelingTime, tt.from,
                  tt.to, tt.min_ticks,
                  StrFormat("travelingTime(%s, %s, %d) is implied by the "
                            "closure: every remaining path already needs "
                            ">= %d ticks",
                            sink.Name(tt.from).c_str(),
                            sink.Name(tt.to).c_str(), tt.min_ticks, path));
      }
    }
  }

  // Exit diagnostics: can an object at `from` ever leave?
  for (LocationId from = 0; from < n && n > 1; ++from) {
    std::size_t non_du_targets = 0;
    std::size_t one_tick_exits = 0;
    for (LocationId to = 0; to < n; ++to) {
      if (to == from || constraints.IsUnreachable(from, to)) continue;
      ++non_du_targets;
      if (constraints.MinTravelTicks(from, to) <= 1) ++one_tick_exits;
    }
    if (non_du_targets == 0) {
      sink.Emit(ConstraintDiagnostic::kSinkLocation, from, kInvalidLocation, 0,
                StrFormat("every move out of %s is directly unreachable; "
                          "objects reaching it are trapped",
                          sink.Name(from).c_str()));
    } else if (one_tick_exits == 0) {
      sink.Emit(ConstraintDiagnostic::kNoExit, from, kInvalidLocation, 0,
                StrFormat("%s has %zu non-DU targets but every one carries a "
                          "traveling-time bound > 1, so no first hop exists "
                          "and the location can never be left",
                          sink.Name(from).c_str(), non_du_targets));
    }
  }

  // Coverage diagnostics, only with deployment data.
  if (!options.covered_locations.empty()) {
    RFID_CHECK_EQ(options.covered_locations.size(),
                  constraints.num_locations());
    for (LocationId l = 0; l < n; ++l) {
      if (options.covered_locations[static_cast<std::size_t>(l)]) continue;
      sink.Emit(ConstraintDiagnostic::kUncoveredLocation, l, kInvalidLocation,
                0,
                StrFormat("no reader covers %s; stays there are invisible",
                          sink.Name(l).c_str()));
      bool reachable_from_coverage = false;
      for (LocationId c = 0; c < n && !reachable_from_coverage; ++c) {
        reachable_from_coverage =
            options.covered_locations[static_cast<std::size_t>(c)] &&
            closure.Reachable(c, l);
      }
      if (!reachable_from_coverage) {
        sink.Emit(ConstraintDiagnostic::kUnreachableFromCoverage, l,
                  kInvalidLocation, 0,
                  StrFormat("%s is unreachable from every covered location; "
                            "no observed object can ever be placed there",
                            sink.Name(l).c_str()));
      }
    }
  }

  return report;
}

}  // namespace rfidclean
