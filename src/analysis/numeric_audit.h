#ifndef RFIDCLEAN_ANALYSIS_NUMERIC_AUDIT_H_
#define RFIDCLEAN_ANALYSIS_NUMERIC_AUDIT_H_

#include "analysis/audit_report.h"
#include "core/ct_graph.h"

namespace rfidclean {

/// \file
/// Numeric audit of a ct-graph: are the probabilities on a structurally
/// sound graph actually a conditioned distribution (Definitions 3 and 5)?
/// Catches the silent-drift failure mode — a graph that still looks like a
/// DAG but whose masses no longer sum to 1 — before it corrupts every
/// downstream query answer.

/// Appends numeric violations of `graph` to `report`: NaN/Inf/negative/
/// zero/above-one probabilities, per-node outgoing normalization, source
/// normalization, and the total conditioned path mass computed by
/// TotalPathMass. Assumes edge targets are in range (run AuditStructure
/// first; AuditGraph does); out-of-range edges are skipped defensively.
void AuditNumerics(const CtGraph& graph, const AuditOptions& options,
                   AuditReport* report);

/// Total conditioned path mass Σ_paths p(path) via a backward suffix-mass
/// sweep: S(target) = 1, S(n) = Σ_e p(e)·S(e.to), returning
/// Σ_source p_N(s)·S(s). Exactly 1 for a correctly conditioned graph; the
/// sweep is O(nodes + edges), unlike path enumeration.
double TotalPathMass(const CtGraph& graph);

}  // namespace rfidclean

#endif  // RFIDCLEAN_ANALYSIS_NUMERIC_AUDIT_H_
