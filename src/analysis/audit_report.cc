#include "analysis/audit_report.h"

#include "common/strings.h"

namespace rfidclean {

const char* AuditCheckName(AuditCheck check) {
  switch (check) {
    case AuditCheck::kEdgeTargetRange:
      return "edge-target-range";
    case AuditCheck::kLayering:
      return "layering";
    case AuditCheck::kAcyclicity:
      return "acyclicity";
    case AuditCheck::kLayerNonEmpty:
      return "layer-non-empty";
    case AuditCheck::kReachability:
      return "reachability";
    case AuditCheck::kTermination:
      return "termination";
    case AuditCheck::kFiniteProbabilities:
      return "finite-probabilities";
    case AuditCheck::kEdgeNormalization:
      return "edge-normalization";
    case AuditCheck::kSourceNormalization:
      return "source-normalization";
    case AuditCheck::kPathMass:
      return "path-mass";
    case AuditCheck::kCsrLayerOffsets:
      return "csr-layer-offsets";
    case AuditCheck::kCsrEdgeSlices:
      return "csr-edge-slices";
    case AuditCheck::kCsrKeyInterning:
      return "csr-key-interning";
    case AuditCheck::kCsrProbabilities:
      return "csr-probabilities";
  }
  return "unknown";
}

std::string AuditViolation::ToString() const {
  std::string where;
  if (node != kInvalidNode && time >= 0) {
    where = StrFormat(" node %d @t=%d", node, time);
  } else if (node != kInvalidNode) {
    where = StrFormat(" node %d", node);
  } else if (time >= 0) {
    where = StrFormat(" @t=%d", time);
  }
  return StrFormat("[%s]%s: %s", AuditCheckName(check), where.c_str(),
                   message.c_str());
}

std::size_t AuditReport::CountOf(AuditCheck check) const {
  std::size_t count = 0;
  for (const AuditViolation& violation : violations) {
    if (violation.check == check) ++count;
  }
  return count;
}

std::string AuditReport::ToString() const {
  std::string out = StrFormat(
      "audit: %zu violation(s)%s over %zu nodes, %zu edges, %d ticks "
      "(path mass %.12f)",
      violations.size(), truncated ? " [truncated]" : "", nodes_checked,
      edges_checked, length, path_mass);
  for (const AuditViolation& violation : violations) {
    out += "\n  ";
    out += violation.ToString();
  }
  return out;
}

Status AuditReport::ToStatus() const {
  if (ok()) return Status::Ok();
  // Carry the first violations only: a corrupt graph can produce one
  // violation per node, and the point of the status is to fail the build
  // with a diagnosable message, not to transcribe the full report.
  constexpr std::size_t kMaxInMessage = 3;
  std::string message = StrFormat("ct-graph audit found %zu violation(s)",
                                  violations.size());
  for (std::size_t i = 0; i < violations.size() && i < kMaxInMessage; ++i) {
    message += "; ";
    message += violations[i].ToString();
  }
  if (violations.size() > kMaxInMessage) {
    message +=
        StrFormat("; and %zu more", violations.size() - kMaxInMessage);
  }
  return InternalError(std::move(message));
}

namespace internal_audit {

bool AppendViolation(const AuditOptions& options, AuditReport* report,
                     AuditViolation violation) {
  if (report->violations.size() >= options.max_violations) {
    report->truncated = true;
    return false;
  }
  report->violations.push_back(std::move(violation));
  return true;
}

}  // namespace internal_audit
}  // namespace rfidclean
