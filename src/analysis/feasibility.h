#ifndef RFIDCLEAN_ANALYSIS_FEASIBILITY_H_
#define RFIDCLEAN_ANALYSIS_FEASIBILITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "constraints/constraint_set.h"
#include "model/lsequence.h"

namespace rfidclean {

/// \file
/// Static feasibility analysis of an l-sequence under a constraint set.
///
/// The engine (core/forward.h + core/work_graph.cc) discovers that a branch
/// of the ct-graph is inconsistent only during the backward sweep, after
/// every layer has been materialized. This analyzer answers the same
/// question — "can candidate (t, l) lie on any valid trajectory?" — ahead
/// of time, on a sound relaxation of Definition 3 that ignores the TL
/// component and the exact stay length:
///
///   state  := (location, fresh?)        fresh = arrived on this tick
///   stay   l -> l           any state -> non-fresh, always allowed
///   move   l -> l' (l≠l')   forbidden iff DU(l, l'), or TT(l, l') > 1,
///                           or (fresh and LT(l) > 1)
///
/// Every Definition-3 step is a step of the relaxation (dropping conditions
/// can only admit more behavior), so every node the engine would build maps
/// to a relaxed state with the same location and freshness. A forward pass
/// over the candidate lists marks states reachable from tick 0; a backward
/// pass marks states from which the final tick is reachable. A candidate
/// whose states are never both is *statically dead*: the backward sweep
/// would assign it suffix mass 0 (no source-to-sink path through it), so
/// removing it from the candidate list before the build cannot change the
/// conditioned graph — see docs/ALGORITHM.md §11 for the full argument.
///
/// When some tick has no admissible candidate at all, the whole clean is
/// doomed: no valid trajectory exists and the build would fail after
/// materializing (and then killing) every layer. `PreflightPlan::doomed_at`
/// reports the first such tick so callers can fail in O(analysis) instead.

/// All-pairs travel-time lower bounds implied by the constraint closure.
///
/// The one-tick move graph has an edge a -> b (a ≠ b) iff !DU(a, b) and
/// TT(a, b) <= 1 — exactly the moves SuccessorGenerator can ever emit.
/// Path length is measured in ticks: the first hop costs 1, and extending a
/// path through an intermediate m costs max(1, LT(m)) because a latency
/// constraint forces the object to sit at m before moving on. The closure
/// bound mtt(a, b) = max(shortest path, TT(a, b)) is therefore a sound
/// lower bound on the ticks any valid trajectory needs to get from a to b.
/// Used by the constraint auditor (constraint_audit.h) to detect
/// contradictions and redundancies; O(n^2 log n) Dijkstra from every
/// source, computed once per constraint set.
class TravelClosure {
 public:
  /// Sentinel for "no path in the one-tick move graph" (mirrors
  /// HopDistances::kUnreachable; large but far from Timestamp overflow).
  static constexpr Timestamp kUnreachable = 1 << 29;

  explicit TravelClosure(const ConstraintSet& constraints);

  std::size_t num_locations() const { return num_locations_; }

  /// True when a one-tick move from -> to is admissible in isolation.
  bool HasDirectEdge(LocationId from, LocationId to) const;

  /// Shortest-path tick bound alone (0 when from == to, kUnreachable when
  /// no path exists). Deliberately excludes the direct TT(from, to) bound,
  /// so the auditor can compare a TT constraint against what the *rest* of
  /// the closure already implies.
  Timestamp PathTicks(LocationId from, LocationId to) const;

  /// max(PathTicks, TT(from, to)): the closure's min-travel-ticks matrix.
  Timestamp MinTravelTicks(LocationId from, LocationId to) const;

  /// Whether any valid trajectory can ever get from `from` to `to`.
  bool Reachable(LocationId from, LocationId to) const {
    return PathTicks(from, to) < kUnreachable;
  }

 private:
  std::size_t num_locations_ = 0;
  const ConstraintSet* constraints_;
  std::vector<Timestamp> path_ticks_;  // num_locations^2
};

/// Result of one FeasibilityOracle::Analyze pass over an l-sequence.
struct PreflightPlan {
  /// First tick with no admissible candidate, or -1 when the clean can
  /// succeed. When >= 0 the build is statically doomed.
  Timestamp doomed_at = -1;

  /// Per tick, aligned with the candidate list Analyze saw: true when the
  /// candidate can lie on a valid trajectory under the relaxation.
  std::vector<std::vector<bool>> admissible;

  /// Candidates with admissible[t][i] == false, summed over all ticks.
  std::size_t candidates_pruned = 0;

  /// Relaxed one-tick transitions with a statically-dead endpoint — the
  /// upper bound on work-graph edges the pruned build can no longer touch.
  std::size_t edges_pruned = 0;

  bool doomed() const { return doomed_at >= 0; }
  bool any_pruned() const { return candidates_pruned > 0; }

  /// True when some candidate at tick t is statically dead (callers skip
  /// the copy in FilterTick otherwise).
  bool PrunedAt(Timestamp t) const;

  /// Copies the admissible subset of `in` — which must be the exact
  /// candidate list Analyze saw at tick t — into `*out` (cleared first),
  /// preserving order and probabilities. No renormalization: conditioning
  /// renormalizes, and identical inputs keep the output graphs
  /// byte-identical with pruning on or off.
  void FilterTick(Timestamp t, const std::vector<Candidate>& in,
                  std::vector<Candidate>* out) const;
};

/// Stateless-per-call analyzer binding a constraint set to the relaxation
/// above. Construct once per constraint set and share freely: Analyze is
/// const and allocation-local, so one oracle serves concurrent cleaners.
class FeasibilityOracle {
 public:
  /// The constraint set must outlive the oracle.
  explicit FeasibilityOracle(const ConstraintSet& constraints);

  const ConstraintSet& constraints() const { return *constraints_; }

  /// Closure matrix over the same constraint set (computed eagerly at
  /// construction, once per oracle).
  const TravelClosure& closure() const { return closure_; }

  /// Runs the forward/backward admissibility passes over `sequence`.
  /// Records the preflight counters and trace span (obs).
  PreflightPlan Analyze(const LSequence& sequence) const;

 private:
  const ConstraintSet* constraints_;
  TravelClosure closure_;
};

}  // namespace rfidclean

#endif  // RFIDCLEAN_ANALYSIS_FEASIBILITY_H_
