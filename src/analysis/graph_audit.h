#ifndef RFIDCLEAN_ANALYSIS_GRAPH_AUDIT_H_
#define RFIDCLEAN_ANALYSIS_GRAPH_AUDIT_H_

#include "analysis/audit_report.h"
#include "core/ct_graph.h"

namespace rfidclean {

/// \file
/// Structural audit of a ct-graph: does the graph have the *shape* required
/// by Definition 4 — a layered DAG whose source→target paths are exactly
/// the valid trajectories? Numeric properties (normalization, path mass)
/// live in numeric_audit.h; AuditGraph runs both.
///
/// The auditor is defensive: it never dereferences an out-of-range node id
/// and never aborts, so it can be pointed at graphs produced by buggy
/// builders, corrupted serialized files, or deliberately broken test
/// fixtures (CtGraph::AssembleUnchecked).

/// Appends structural violations of `graph` to `report`: edge target
/// ranges, layering, acyclicity (Kahn topological sort over the raw edge
/// relation), empty layers, source/target termination, and forward+backward
/// reachability.
void AuditStructure(const CtGraph& graph, const AuditOptions& options,
                    AuditReport* report);

/// Full audit: structure first, then numerics. The one-stop entry point
/// used by the CLI `--audit` flag and the self-audit hook.
AuditReport AuditGraph(const CtGraph& graph,
                       const AuditOptions& options = AuditOptions());

/// Installs the core self-audit hook (core/self_audit.h) so that every
/// CtGraphBuilder::Build and StreamingCleaner::Finish re-audits its result
/// with `options` and fails with InternalError on any violation. Turns the
/// construction paths into their own tripwire; intended for tests, the CLI
/// and debug deployments — a full audit is O(nodes + edges) per build.
void EnableSelfAudit(const AuditOptions& options = AuditOptions());

/// Removes the hook installed by EnableSelfAudit.
void DisableSelfAudit();

}  // namespace rfidclean

#endif  // RFIDCLEAN_ANALYSIS_GRAPH_AUDIT_H_
